//! Adapter plugging a [`Processor`] into the deterministic simulator.
//!
//! [`SimProcessor`] implements [`ftmp_net::SimNode`]: packets and ticks are
//! forwarded to the engine, its Send/Join/Leave actions are applied through
//! the [`Outbox`], and its Deliver/Event actions are queued for the test or
//! experiment harness to drain between simulation steps.

use crate::ids::GroupId;
use crate::observe::Observation;
use crate::processor::{Action, Delivery, Processor, ProtocolEvent};
use ftmp_net::{Outbox, Packet, SimNode, SimTime};
use std::collections::VecDeque;

/// A flow-control window edge observed by the adapter: `true` means the
/// window closed (backpressure on), `false` that it reopened.
pub type WindowEvent = (SimTime, GroupId, bool);

/// A conformance observer callback: virtual time plus the observation
/// (DESIGN.md §9). The observing processor's identity is fixed at
/// [`SimProcessor::set_observer`] time, so it is not repeated per call.
pub type Observer = Box<dyn FnMut(SimTime, Observation)>;

/// A simulator-hosted FTMP endpoint.
pub struct SimProcessor {
    engine: Processor,
    deliveries: VecDeque<(SimTime, Delivery)>,
    events: VecDeque<(SimTime, ProtocolEvent)>,
    window_events: VecDeque<WindowEvent>,
    last_now: SimTime,
    observer: Option<Observer>,
    obs_scratch: Vec<Observation>,
    act_scratch: Vec<Action>,
}

impl SimProcessor {
    /// Wrap an engine.
    pub fn new(engine: Processor) -> Self {
        SimProcessor {
            engine,
            deliveries: VecDeque::new(),
            events: VecDeque::new(),
            window_events: VecDeque::new(),
            last_now: SimTime::ZERO,
            observer: None,
            obs_scratch: Vec::new(),
            act_scratch: Vec::new(),
        }
    }

    /// Attach a conformance observer and enable the engine's observation
    /// recording. Every observation the engine records is forwarded to `f`
    /// (stamped with the virtual time of the pump that drained it) in the
    /// exact order the engine performed the corresponding transitions.
    pub fn set_observer(&mut self, f: impl FnMut(SimTime, Observation) + 'static) {
        self.engine.enable_observations();
        self.observer = Some(Box::new(f));
    }

    /// The wrapped engine (for FT-infrastructure calls and inspection).
    pub fn engine(&self) -> &Processor {
        &self.engine
    }

    /// Mutable access to the engine. Call through
    /// [`ftmp_net::SimNet::with_node`] so the resulting actions are
    /// transmitted.
    pub fn engine_mut(&mut self) -> &mut Processor {
        &mut self.engine
    }

    /// Drain ordered deliveries accumulated so far, each stamped with the
    /// virtual time at which it was delivered.
    pub fn take_deliveries(&mut self) -> Vec<(SimTime, Delivery)> {
        self.deliveries.drain(..).collect()
    }

    /// Drain protocol events accumulated so far, stamped with delivery time.
    pub fn take_events(&mut self) -> Vec<(SimTime, ProtocolEvent)> {
        self.events.drain(..).collect()
    }

    /// Drain flow-control window edges (`true` = closed, `false` =
    /// reopened), stamped with the virtual time they surfaced.
    pub fn take_window_events(&mut self) -> Vec<WindowEvent> {
        self.window_events.drain(..).collect()
    }

    /// Peek at queued deliveries without draining.
    pub fn deliveries(&self) -> impl Iterator<Item = &(SimTime, Delivery)> {
        self.deliveries.iter()
    }

    /// Number of queued deliveries.
    pub fn delivery_count(&self) -> usize {
        self.deliveries.len()
    }

    /// Apply the engine's pending actions to an outbox, queueing upcalls
    /// stamped with `now`.
    pub fn pump_at(&mut self, now: SimTime, out: &mut Outbox) {
        self.last_now = now;
        // Reusable scratch: the action spine drains into a per-adapter
        // buffer whose capacity survives across pumps.
        let mut actions = std::mem::take(&mut self.act_scratch);
        self.engine.drain_actions_into(&mut actions);
        for action in actions.drain(..) {
            match action {
                Action::Send { addr, payload } => {
                    out.send(Packet::new(self.engine.id().0, addr, payload));
                }
                Action::Join(addr) => out.join(addr),
                Action::Leave(addr) => out.leave(addr),
                Action::Deliver(d) => self.deliveries.push_back((now, d)),
                Action::Event(e) => self.events.push_back((now, e)),
                Action::Backpressure(g) => self.window_events.push_back((now, g, true)),
                Action::SendReady(g) => self.window_events.push_back((now, g, false)),
            }
        }
        self.act_scratch = actions;
        if let Some(cb) = self.observer.as_mut() {
            self.engine.drain_observations_into(&mut self.obs_scratch);
            for o in self.obs_scratch.drain(..) {
                cb(now, o);
            }
        }
    }

    /// Apply pending actions using the last observed virtual time.
    pub fn pump(&mut self, out: &mut Outbox) {
        let now = self.last_now;
        self.pump_at(now, out);
    }
}

impl SimNode for SimProcessor {
    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Outbox) {
        self.engine.handle_packet(now, pkt);
        self.pump_at(now, out);
    }

    fn on_tick(&mut self, now: SimTime, out: &mut Outbox) {
        self.engine.tick(now);
        self.pump_at(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockMode;
    use crate::config::ProtocolConfig;
    use crate::ids::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum};
    use crate::wire;
    use bytes::Bytes;
    use ftmp_net::{McastAddr, SimConfig, SimDuration, SimNet};

    fn conn() -> ConnectionId {
        ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
    }

    /// Build an n-member simulated group with a pre-bound connection.
    pub(crate) fn build_net(
        n: u32,
        sim_cfg: SimConfig,
        cfg: ProtocolConfig,
    ) -> SimNet<SimProcessor> {
        let gid = GroupId(1);
        let addr = McastAddr(100);
        let members: Vec<ProcessorId> = (1..=n).map(ProcessorId).collect();
        let mut net = SimNet::new(sim_cfg);
        net.set_classifier(wire::classify);
        net.set_message_counter(wire::message_count);
        for id in 1..=n {
            let mut engine = Processor::new(ProcessorId(id), cfg.clone(), ClockMode::Lamport);
            engine.create_group(ftmp_net::SimTime::ZERO, gid, addr, members.clone());
            let mut node = SimProcessor::new(engine);
            // Apply the initial Join action.
            let mut out = Outbox::default();
            node.pump(&mut out);
            net.add_node(id, node);
            net.subscribe(id, addr);
        }
        // Bind the test connection everywhere.
        for id in 1..=n {
            net.with_node(id, |n, _, _| {
                n.engine_mut().bind_connection(conn(), gid);
            });
        }
        net
    }

    #[test]
    fn three_members_converge_on_one_total_order() {
        let mut net = build_net(3, SimConfig::with_seed(7), ProtocolConfig::with_seed(7));
        // Everyone multicasts concurrently.
        for (i, id) in (1u32..=3).enumerate() {
            net.with_node(id, |n, now, out| {
                n.engine_mut()
                    .multicast_request(
                        now,
                        conn(),
                        RequestNum(i as u64 + 1),
                        Bytes::from(vec![id as u8]),
                    )
                    .unwrap();
                n.pump(out);
            });
        }
        net.run_for(SimDuration::from_millis(100));
        let seqs: Vec<Vec<(u64, u32)>> = (1..=3u32)
            .map(|id| {
                net.node_mut(id)
                    .unwrap()
                    .take_deliveries()
                    .iter()
                    .map(|(_, d)| (d.ts.0, d.source.0))
                    .collect()
            })
            .collect();
        assert_eq!(seqs[0].len(), 3, "all three messages delivered");
        assert_eq!(seqs[0], seqs[1]);
        assert_eq!(seqs[1], seqs[2]);
    }

    #[test]
    fn loss_recovered_transparently() {
        let sim_cfg = SimConfig::with_seed(3).loss(ftmp_net::LossModel::Iid { p: 0.2 });
        let mut net = build_net(3, sim_cfg, ProtocolConfig::with_seed(3));
        for k in 0..20u64 {
            let id = (k % 3) as u32 + 1;
            net.with_node(id, |n, now, out| {
                n.engine_mut()
                    .multicast_request(now, conn(), RequestNum(k), Bytes::from(vec![k as u8]))
                    .unwrap();
                n.pump(out);
            });
            net.run_for(SimDuration::from_millis(2));
        }
        net.run_for(SimDuration::from_millis(300));
        let all: Vec<Vec<(u64, u32)>> = (1..=3u32)
            .map(|id| {
                net.node_mut(id)
                    .unwrap()
                    .take_deliveries()
                    .iter()
                    .map(|(_, d)| (d.ts.0, d.source.0))
                    .collect()
            })
            .collect();
        assert_eq!(all[0].len(), 20, "every message delivered despite loss");
        assert_eq!(all[0], all[1]);
        assert_eq!(all[1], all[2]);
        assert!(
            net.stats().lost > 0,
            "the loss model actually dropped packets"
        );
    }

    #[test]
    fn crash_triggers_membership_change_and_flush() {
        let cfg = ProtocolConfig::with_seed(5);
        let mut net = build_net(3, SimConfig::with_seed(5), cfg);
        net.run_for(SimDuration::from_millis(20));
        // One in-flight message, then the sender crashes.
        net.with_node(3, |n, now, out| {
            n.engine_mut()
                .multicast_request(now, conn(), RequestNum(1), Bytes::from_static(b"last"))
                .unwrap();
            n.pump(out);
        });
        net.run_for(SimDuration::from_millis(5));
        net.crash(3);
        // Survivors detect, convict (majority 2 of 3), reconfigure.
        net.run_for(SimDuration::from_millis(600));
        for id in 1..=2u32 {
            let node = net.node_mut(id).unwrap();
            let events = node.take_events();
            assert!(
                events.iter().any(|(_, e)| matches!(
                    e,
                    crate::processor::ProtocolEvent::FaultReport { processor, .. }
                    if *processor == ProcessorId(3)
                )),
                "P{id} reported the fault: {events:?}"
            );
            let members = node.engine().membership(GroupId(1)).unwrap();
            assert_eq!(members, vec![ProcessorId(1), ProcessorId(2)]);
        }
        // Virtual synchrony: both survivors delivered the same set.
        let d1: Vec<(u64, u32)> = net
            .node_mut(1)
            .unwrap()
            .take_deliveries()
            .iter()
            .map(|(_, d)| (d.ts.0, d.source.0))
            .collect();
        let d2: Vec<(u64, u32)> = net
            .node_mut(2)
            .unwrap()
            .take_deliveries()
            .iter()
            .map(|(_, d)| (d.ts.0, d.source.0))
            .collect();
        assert_eq!(d1, d2);
        assert_eq!(d1.len(), 1, "the crashed sender's message was flushed");
    }

    #[test]
    fn retention_reclaimed_by_ack_stability() {
        let mut net = build_net(3, SimConfig::with_seed(11), ProtocolConfig::with_seed(11));
        for k in 0..10u64 {
            net.with_node(1, |n, now, out| {
                n.engine_mut()
                    .multicast_request(now, conn(), RequestNum(k), Bytes::from(vec![0u8; 64]))
                    .unwrap();
                n.pump(out);
            });
            net.run_for(SimDuration::from_millis(1));
        }
        let peak = net
            .node(1)
            .unwrap()
            .engine()
            .group_metrics(GroupId(1))
            .unwrap()
            .retention_msgs;
        assert!(peak > 0);
        // Quiet period: acks circulate via heartbeats, stability advances.
        net.run_for(SimDuration::from_millis(500));
        let after = net
            .node(1)
            .unwrap()
            .engine()
            .group_metrics(GroupId(1))
            .unwrap()
            .retention_msgs;
        assert!(
            after < peak,
            "retention should shrink once acks stabilize (peak {peak}, after {after})"
        );
    }

    /// FNV-1a over every traced event: any byte-level or ordering change to
    /// the wire behaviour moves this hash.
    fn trace_hash(net: &SimNet<SimProcessor>) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for r in net.trace().expect("trace enabled").records() {
            for b in r.at.0.to_le_bytes() {
                eat(b);
            }
            for b in r.src.to_le_bytes() {
                eat(b);
            }
            for b in r.dst.0.to_le_bytes() {
                eat(b);
            }
            for b in (r.len as u64).to_le_bytes() {
                eat(b);
            }
            eat(r.kind.unwrap_or(0xFF));
        }
        h
    }

    /// A fixed seeded scenario: three members, each bursting three
    /// multicasts back-to-back, 100 ms of protocol time.
    fn traced_run(cfg: ProtocolConfig) -> SimNet<SimProcessor> {
        traced_run_with(cfg, false)
    }

    /// Same scenario, optionally with telemetry enabled on every engine.
    fn traced_run_with(cfg: ProtocolConfig, telemetry: bool) -> SimNet<SimProcessor> {
        let mut net = build_net(3, SimConfig::with_seed(7), cfg);
        if telemetry {
            for id in 1u32..=3 {
                net.with_node(id, |n, _, _| n.engine_mut().enable_telemetry());
            }
        }
        net.enable_trace(1 << 16);
        for id in 1u32..=3 {
            net.with_node(id, |n, now, out| {
                for k in 0..3u64 {
                    n.engine_mut()
                        .multicast_request(
                            now,
                            conn(),
                            RequestNum(u64::from(id) * 10 + k),
                            Bytes::from(vec![id as u8; 32]),
                        )
                        .unwrap();
                }
                n.pump(out);
            });
        }
        net.run_for(SimDuration::from_millis(100));
        net
    }

    /// With packing off (the default), the wire trace is pinned: no packed
    /// containers ever appear, and the exact event sequence matches the
    /// golden hash recorded from the pre-packing protocol. Reproducibility
    /// of the existing experiments is byte-for-byte.
    #[test]
    fn default_config_wire_trace_is_container_free_and_pinned() {
        let net = traced_run(ProtocolConfig::with_seed(7));
        assert!(
            !ProtocolConfig::with_seed(7).packing.enabled,
            "packing defaults to off"
        );
        let trace = net.trace().unwrap();
        assert_eq!(
            trace.of_kind(wire::PACKED_MSG_TYPE).count(),
            0,
            "no containers under the default config"
        );
        assert_eq!(
            net.stats().sent_packets,
            net.stats().sent_messages,
            "one message per datagram when packing is off"
        );
        assert_eq!(
            trace_hash(&net),
            0x40E7_EDBA_EE0B_E021,
            "default-config wire trace drifted from the pre-packing protocol"
        );
    }

    /// Telemetry is observation only: with every engine recording, the wire
    /// trace still matches the pinned golden hash bit for bit, while the
    /// latency histograms actually populate.
    #[test]
    fn telemetry_on_wire_trace_identical_and_histograms_populate() {
        let net = traced_run_with(ProtocolConfig::with_seed(7), true);
        assert_eq!(
            trace_hash(&net),
            0x40E7_EDBA_EE0B_E021,
            "enabling telemetry perturbed the wire traffic"
        );
        let snap = net
            .node(1)
            .unwrap()
            .engine()
            .telemetry()
            .expect("telemetry enabled")
            .snapshot();
        let ordering = snap.histogram("ordering_delay_us").expect("registered");
        assert!(ordering.count > 0, "ordering delays recorded");
        assert!(
            snap.histogram("e2e_self_us").expect("registered").count > 0,
            "own-message end-to-end latency recorded"
        );
        assert!(snap.counter("deliveries").unwrap_or(0) > 0);
    }

    /// The durable delivery-log sink (DESIGN.md §12) is observation only,
    /// like telemetry: with a log attached to every engine the wire trace
    /// still matches the pinned golden hash bit for bit, while deliveries
    /// actually reach the sink. Together with the two tests above this pins
    /// bit-identical wire traffic with the log disabled *and* enabled.
    #[test]
    fn delivery_log_on_wire_trace_identical_and_records_flow() {
        use crate::durable::DeliveryLog;
        use crate::ids::{GroupId, Timestamp};
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        // `DeliveryLog: Send` (for the real-socket runtime), so the test
        // sink shares counts through atomics rather than `Rc<RefCell>`.
        #[derive(Default)]
        struct Counts {
            deliveries: AtomicU64,
            views: AtomicU64,
        }
        struct CountingLog(Arc<Counts>);
        impl DeliveryLog for CountingLog {
            fn on_delivery(&mut self, _d: &crate::processor::Delivery) {
                self.0.deliveries.fetch_add(1, Ordering::Relaxed);
            }
            fn on_view_change(&mut self, _g: GroupId, _m: &[ProcessorId], _ts: Timestamp) {
                self.0.views.fetch_add(1, Ordering::Relaxed);
            }
        }

        let counts: Arc<Counts> = Arc::default();
        let mut net = build_net(3, SimConfig::with_seed(7), ProtocolConfig::with_seed(7));
        for id in 1u32..=3 {
            let c = Arc::clone(&counts);
            net.with_node(id, move |n, _, _| {
                n.engine_mut().set_delivery_log(Box::new(CountingLog(c)));
                assert!(n.engine().delivery_log_enabled());
            });
        }
        net.enable_trace(1 << 16);
        for id in 1u32..=3 {
            net.with_node(id, |n, now, out| {
                for k in 0..3u64 {
                    n.engine_mut()
                        .multicast_request(
                            now,
                            conn(),
                            RequestNum(u64::from(id) * 10 + k),
                            Bytes::from(vec![id as u8; 32]),
                        )
                        .unwrap();
                }
                n.pump(out);
            });
        }
        net.run_for(SimDuration::from_millis(100));
        assert_eq!(
            trace_hash(&net),
            0x40E7_EDBA_EE0B_E021,
            "attaching a delivery log perturbed the wire traffic"
        );
        assert_eq!(
            counts.deliveries.load(Ordering::Relaxed),
            27,
            "all three engines logged all nine deliveries"
        );
        let _ = counts.views.load(Ordering::Relaxed); // founders install no later views here
    }

    /// S3 regression, at wire level: the survivor's outgoing ack timestamp
    /// never moves backwards across suspicion, conviction and removal of
    /// every peer (an ack regression would let peers' retention logic
    /// un-stabilize already-reclaimed messages).
    #[test]
    fn wire_acks_stay_monotone_through_conviction_of_all_peers() {
        use crate::config::Quorum;
        use std::cell::RefCell;
        use std::rc::Rc;

        let cfg = ProtocolConfig::with_seed(5).quorum(Quorum::Fixed(1));
        let mut net = build_net(3, SimConfig::with_seed(5), cfg);
        let acks: Rc<RefCell<Vec<(u64, u64)>>> = Rc::default();
        let sink = Rc::clone(&acks);
        net.set_wire_tap(move |at, src, _dst, payload| {
            if src == 1 && !wire::is_packed(payload) {
                if let Ok((h, _)) = wire::FtmpHeader::decode(payload) {
                    sink.borrow_mut().push((at.0, h.ack_ts.0));
                }
            }
        });
        // Traffic so the survivor's advertised ack climbs well above zero.
        for k in 0..5u64 {
            net.with_node(1, |n, now, out| {
                n.engine_mut()
                    .multicast_request(now, conn(), RequestNum(k), Bytes::from(vec![1u8]))
                    .unwrap();
                n.pump(out);
            });
            net.run_for(SimDuration::from_millis(2));
        }
        net.run_for(SimDuration::from_millis(50));
        net.crash(2);
        net.crash(3);
        // Fixed(1) quorum: P1 alone convicts both silent peers.
        net.run_for(SimDuration::from_millis(600));
        net.with_node(1, |n, _, _| {
            assert_eq!(
                n.engine().membership(GroupId(1)).unwrap(),
                vec![ProcessorId(1)],
                "both peers convicted and removed"
            );
        });
        // Post-reconfiguration traffic in the singleton view.
        net.with_node(1, |n, now, out| {
            n.engine_mut()
                .multicast_request(now, conn(), RequestNum(99), Bytes::from(vec![9u8]))
                .unwrap();
            n.pump(out);
        });
        net.run_for(SimDuration::from_millis(50));
        let acks = acks.borrow();
        assert!(
            acks.iter().any(|&(_, a)| a > 0),
            "acks advanced above zero before the crash"
        );
        for w in acks.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "wire ack regressed: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// The same scenario with packing on delivers the identical total order
    /// while using fewer datagrams than messages, and the suppressed
    /// standalone heartbeats are counted.
    #[test]
    fn packed_run_preserves_order_with_fewer_datagrams() {
        use crate::config::{PackPolicy, Packing};

        let deliveries = |net: &mut SimNet<SimProcessor>| -> Vec<Vec<(u64, u32)>> {
            (1..=3u32)
                .map(|id| {
                    net.node_mut(id)
                        .unwrap()
                        .take_deliveries()
                        .iter()
                        .map(|(_, d)| (d.ts.0, d.source.0))
                        .collect()
                })
                .collect()
        };
        let mut plain = traced_run(ProtocolConfig::with_seed(7));
        let mut packed = traced_run(ProtocolConfig::with_seed(7).packing(Packing::with(
            1400,
            PackPolicy::Deadline(SimDuration::from_micros(500)),
        )));
        let d_plain = deliveries(&mut plain);
        let d_packed = deliveries(&mut packed);
        assert_eq!(d_plain, d_packed, "packing never changes what is delivered");
        assert_eq!(d_packed[0].len(), 9);
        assert_eq!(d_packed[0], d_packed[1]);
        assert_eq!(d_packed[1], d_packed[2]);
        let s = packed.stats();
        assert!(
            s.sent_packets < s.sent_messages,
            "some datagrams carried more than one message \
             (packets {}, messages {})",
            s.sent_packets,
            s.sent_messages
        );
        assert!(
            s.sent_packets < plain.stats().sent_packets,
            "packing reduced datagrams on the wire"
        );
    }

    #[test]
    fn heartbeat_traffic_classified() {
        let mut net = build_net(2, SimConfig::with_seed(13), ProtocolConfig::with_seed(13));
        net.run_for(SimDuration::from_millis(100));
        let hb = net
            .stats()
            .kind_packets(crate::wire::FtmpMsgType::Heartbeat as u8);
        assert!(hb > 0, "heartbeats flow and are classified");
    }

    /// Tree-mode pairing used by the overlay tests: packing on (so ack
    /// vectors ride packed overlay containers) + a k-ary dissemination tree.
    fn tree_cfg(seed: u64, arity: usize) -> ProtocolConfig {
        use crate::config::{OverlayPolicy, PackPolicy, Packing};
        ProtocolConfig::with_seed(seed)
            .packing(Packing::with(
                1400,
                PackPolicy::Deadline(SimDuration::from_micros(500)),
            ))
            .overlay(OverlayPolicy::Tree { arity })
    }

    fn delivery_keys(
        net: &mut SimNet<SimProcessor>,
        ids: impl Iterator<Item = u32>,
    ) -> Vec<Vec<(u64, u32)>> {
        ids.map(|id| {
            net.node_mut(id)
                .unwrap()
                .take_deliveries()
                .iter()
                .map(|(_, d)| (d.ts.0, d.source.0))
                .collect()
        })
        .collect()
    }

    /// Tree mode replaces full-mesh heartbeats with overlay digests and
    /// still converges on one total order under loss.
    #[test]
    fn tree_mode_converges_under_loss_with_digests_replacing_heartbeats() {
        let sim_cfg = SimConfig::with_seed(21).loss(ftmp_net::LossModel::Iid { p: 0.1 });
        let mut net = build_net(8, sim_cfg, tree_cfg(21, 2));
        for k in 0..16u64 {
            let id = (k % 8) as u32 + 1;
            net.with_node(id, |n, now, out| {
                n.engine_mut()
                    .multicast_request(now, conn(), RequestNum(k), Bytes::from(vec![k as u8; 16]))
                    .unwrap();
                n.pump(out);
            });
            net.run_for(SimDuration::from_millis(2));
        }
        net.run_for(SimDuration::from_millis(500));
        let all = delivery_keys(&mut net, 1..=8u32);
        assert_eq!(all[0].len(), 16, "every message delivered despite loss");
        for w in all.windows(2) {
            assert_eq!(w[0], w[1], "identical total order everywhere");
        }
        // Digest traffic flows; standalone flat heartbeats do not.
        let digests: u64 = (1..=8u32)
            .map(|id| {
                net.node(id).unwrap().engine().stats().received
                    [&crate::wire::FtmpMsgType::OverlayDigest]
            })
            .sum();
        assert!(digests > 0, "overlay digests circulated");
        let heartbeats: u64 = (1..=8u32)
            .map(|id| {
                *net.node(id)
                    .unwrap()
                    .engine()
                    .stats()
                    .sent
                    .get(&crate::wire::FtmpMsgType::Heartbeat)
                    .unwrap_or(&0)
            })
            .sum();
        assert_eq!(heartbeats, 0, "tree mode sends digests, not heartbeats");
    }

    /// Tree-mode control-plane scaling: at 16 members the per-interval
    /// control receptions drop by well over 4× against flat, because each
    /// digest reaches O(arity) subscribers instead of n-1.
    #[test]
    fn tree_mode_cuts_control_receptions() {
        let n = 16u32;
        let control = |net: &SimNet<SimProcessor>| -> u64 {
            (1..=n)
                .map(|id| net.node(id).unwrap().engine().stats().control_received())
                .sum()
        };
        let mut flat = build_net(n, SimConfig::with_seed(31), ProtocolConfig::with_seed(31));
        flat.run_for(SimDuration::from_millis(500));
        let mut tree = build_net(n, SimConfig::with_seed(31), tree_cfg(31, 4));
        tree.run_for(SimDuration::from_millis(500));
        let (cf, ct) = (control(&flat), control(&tree));
        assert!(
            ct * 4 <= cf,
            "tree control receptions {ct} not ≥4× below flat {cf}"
        );
    }

    /// A crash at 16 members under tree mode: the survivors convict the dead
    /// member through relayed (non-)evidence, install the shrunk view, and
    /// keep delivering in one total order — the rebuilt tree routes around
    /// the hole.
    #[test]
    fn tree_mode_survives_crash_and_rebuilds() {
        let n = 16u32;
        let mut net = build_net(n, SimConfig::with_seed(41), tree_cfg(41, 4));
        net.run_for(SimDuration::from_millis(50));
        net.crash(5);
        net.run_for(SimDuration::from_millis(900));
        // Post-crash traffic must still order identically.
        for k in 0..6u64 {
            let id = [1u32, 2, 9, 14][k as usize % 4];
            net.with_node(id, |nd, now, out| {
                nd.engine_mut()
                    .multicast_request(now, conn(), RequestNum(100 + k), Bytes::from(vec![k as u8]))
                    .unwrap();
                nd.pump(out);
            });
            net.run_for(SimDuration::from_millis(3));
        }
        net.run_for(SimDuration::from_millis(500));
        let survivors: Vec<u32> = (1..=n).filter(|&id| id != 5).collect();
        for &id in &survivors {
            let members = net
                .node(id)
                .unwrap()
                .engine()
                .membership(GroupId(1))
                .unwrap();
            assert!(
                !members.contains(&ProcessorId(5)),
                "P{id} still lists the crashed member"
            );
            assert_eq!(members.len() as u32, n - 1);
        }
        let all = delivery_keys(&mut net, survivors.iter().copied());
        assert_eq!(all[0].len(), 6, "post-crash messages all delivered");
        for w in all.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }

    /// Satellite invariant (64 members, arity 4, depth 3): a quiet leaf
    /// whose liveness reaches leaves in other subtrees only via relayed
    /// digests (leaf → root → leaf, up to 2 × depth hops) must never be
    /// falsely suspected, even with loss eating some of the relays. The
    /// tree-mode deferral cap divides fail_timeout/2 by that relay distance
    /// precisely so compounded per-hop staleness stays inside the
    /// fault-detector timeout at any depth; this test pins the resulting
    /// end-to-end behaviour (no Suspect traffic, no convictions, membership
    /// intact) over several full fail_timeout periods of total silence.
    #[test]
    fn tree_mode_quiet_leaf_not_suspected_at_64_members() {
        let n = 64u32;
        let sim_cfg = SimConfig::with_seed(51).loss(ftmp_net::LossModel::Iid { p: 0.12 });
        let mut net = build_net(n, sim_cfg, tree_cfg(51, 4));
        // Everyone is quiet: liveness flows exclusively through relayed
        // digests for several full fail_timeout periods.
        net.run_for(SimDuration::from_millis(1500));
        for id in 1..=n {
            let node = net.node_mut(id).unwrap();
            let suspects_sent = *node
                .engine()
                .stats()
                .sent
                .get(&crate::wire::FtmpMsgType::Suspect)
                .unwrap_or(&0);
            assert_eq!(suspects_sent, 0, "P{id} raised a false suspicion");
            let events = node.take_events();
            assert!(
                !events
                    .iter()
                    .any(|(_, e)| matches!(e, crate::processor::ProtocolEvent::FaultReport { .. })),
                "P{id} convicted a healthy member: {events:?}"
            );
            let members = net
                .node(id)
                .unwrap()
                .engine()
                .membership(GroupId(1))
                .unwrap();
            assert_eq!(members.len() as u32, n, "membership intact at P{id}");
        }
    }
}
