//! Raw-socket shims for the handful of options `std::net` does not expose.
//!
//! The workspace is offline (no libc crate), but `std` already links the
//! platform C library, so on Linux the needed calls are declared directly
//! with `extern "C"`. Three options matter to the runtime:
//!
//! - `SO_REUSEADDR`/`SO_REUSEPORT` on the shared UDP multicast port, so
//!   every member process (and every in-process node in tests) can bind the
//!   same port and each receive its own copy of every group datagram;
//! - `IP_MULTICAST_IF` pinned to 127.0.0.1, so sends to 239.x groups route
//!   via loopback without needing a multicast route on a real interface;
//! - `SO_REUSEADDR` on the TCP mesh listener, so a kill -9'd member can
//!   rebind its listening port immediately on restart even while the old
//!   incarnation's connections linger in TIME_WAIT.
//!
//! On non-Linux unix the plain `std` calls are used instead (the constants
//! differ per platform); multicast setup failures there simply select the
//! TCP fallback path.

use std::io;
use std::net::{SocketAddrV4, TcpListener, UdpSocket};

#[cfg(target_os = "linux")]
mod linux {
    use super::*;
    use core::ffi::{c_int, c_void};
    use std::os::unix::io::{AsRawFd, FromRawFd};

    const AF_INET: c_int = 2;
    const SOCK_DGRAM: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;
    const SO_REUSEPORT: c_int = 15;
    const IPPROTO_IP: c_int = 0;
    const IP_MULTICAST_IF: c_int = 32;

    /// `struct sockaddr_in` (Linux layout). Ports and addresses are in
    /// network byte order.
    #[repr(C)]
    struct SockaddrIn {
        sin_family: u16,
        sin_port: u16,
        sin_addr: u32,
        sin_zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const c_void, len: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn check(rc: c_int, fd: Option<c_int>) -> io::Result<()> {
        if rc < 0 {
            let err = io::Error::last_os_error();
            if let Some(fd) = fd {
                unsafe { close(fd) };
            }
            return Err(err);
        }
        Ok(())
    }

    fn set_reuse(fd: c_int) -> io::Result<()> {
        let one: c_int = 1;
        let p = (&one as *const c_int).cast::<c_void>();
        let len = std::mem::size_of::<c_int>() as u32;
        check(
            unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, p, len) },
            Some(fd),
        )?;
        check(
            unsafe { setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, p, len) },
            Some(fd),
        )
    }

    fn bind_v4(fd: c_int, addr: SocketAddrV4) -> io::Result<()> {
        let sa = SockaddrIn {
            sin_family: AF_INET as u16,
            sin_port: addr.port().to_be(),
            sin_addr: u32::from(*addr.ip()).to_be(),
            sin_zero: [0; 8],
        };
        let len = std::mem::size_of::<SockaddrIn>() as u32;
        check(
            unsafe { bind(fd, (&sa as *const SockaddrIn).cast::<c_void>(), len) },
            Some(fd),
        )
    }

    pub fn udp_socket_shared(addr: SocketAddrV4) -> io::Result<UdpSocket> {
        let fd = unsafe { socket(AF_INET, SOCK_DGRAM, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        set_reuse(fd)?;
        bind_v4(fd, addr)?;
        Ok(unsafe { UdpSocket::from_raw_fd(fd) })
    }

    pub fn tcp_listener_reuse(addr: SocketAddrV4) -> io::Result<TcpListener> {
        let fd = unsafe { socket(AF_INET, SOCK_STREAM, 0) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        set_reuse(fd)?;
        bind_v4(fd, addr)?;
        check(unsafe { listen(fd, 64) }, Some(fd))?;
        Ok(unsafe { TcpListener::from_raw_fd(fd) })
    }

    pub fn set_multicast_if_loopback(sock: &UdpSocket) -> io::Result<()> {
        // in_addr for 127.0.0.1, network byte order.
        let addr: u32 = u32::from(std::net::Ipv4Addr::LOCALHOST).to_be();
        let rc = unsafe {
            setsockopt(
                sock.as_raw_fd(),
                IPPROTO_IP,
                IP_MULTICAST_IF,
                (&addr as *const u32).cast::<c_void>(),
                std::mem::size_of::<u32>() as u32,
            )
        };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

/// Bind a UDP socket with `SO_REUSEADDR`+`SO_REUSEPORT` so many sockets
/// (across processes) can share one multicast port.
pub fn udp_socket_shared(addr: SocketAddrV4) -> io::Result<UdpSocket> {
    #[cfg(target_os = "linux")]
    {
        linux::udp_socket_shared(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        UdpSocket::bind(addr)
    }
}

/// Bind+listen a TCP listener with `SO_REUSEADDR` (restart-friendly).
pub fn tcp_listener_reuse(addr: SocketAddrV4) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        linux::tcp_listener_reuse(addr)
    }
    #[cfg(not(target_os = "linux"))]
    {
        TcpListener::bind(addr)
    }
}

/// Route this socket's outgoing multicast via the loopback interface.
pub fn set_multicast_if_loopback(sock: &UdpSocket) -> io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        linux::set_multicast_if_loopback(sock)
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = sock;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn two_sockets_share_one_udp_port() {
        let a = udp_socket_shared(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, 0))
            .expect("first shared socket");
        let port = match a.local_addr().expect("local addr") {
            std::net::SocketAddr::V4(v4) => v4.port(),
            other => panic!("unexpected addr {other:?}"),
        };
        // Binding the *same* port a second time is the whole point.
        let _b = udp_socket_shared(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, port))
            .expect("second socket on the same port");
    }

    #[test]
    fn tcp_listener_binds_and_accept_works() {
        let l = tcp_listener_reuse(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).expect("listener");
        let addr = l.local_addr().expect("addr");
        let _c = std::net::TcpStream::connect(addr).expect("connect");
        let (_s, _peer) = l.accept().expect("accept");
    }
}
