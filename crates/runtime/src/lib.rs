//! # ftmp-runtime — real sockets under the sans-io FTMP engine
//!
//! Everything upstream of this crate is deterministic and in-process: the
//! `Processor` is sans-io, the simulator feeds it virtual time, and the
//! oracles check the observation stream. This crate is the other half of
//! the sans-io bargain: the **same** engine, byte-for-byte the same wire
//! messages, driven by real OS sockets and real time (std + threads only —
//! no async runtime is vendored, and none is needed at these rates).
//!
//! The pieces:
//!
//! - [`transport`] — [`UdpMulticastTransport`] (239.77.x.y groups on
//!   loopback, one `SO_REUSEPORT`-shared port) and [`TcpMeshTransport`]
//!   (full-mesh fallback for multicast-less containers), behind one
//!   [`Transport`] trait with probe-based [`open_transport`] selection.
//! - [`node`] — the engine thread: `recv_timeout`-driven event loop,
//!   batched packet pumps, fixed-cadence ticks, peer lifecycle (founders,
//!   joiners, sponsored adds with retry, crash-restart with an ftmp-store
//!   delivery log attached), and runtime telemetry counters.
//! - [`trace`] — the on-disk observation recorder whose files
//!   `ftmp-check`'s trace replay feeds through the same seven oracles that
//!   check simulator runs.
//! - [`sys`] — the three raw socket options `std::net` is missing.
//!
//! ## A three-node group over real sockets
//!
//! ```no_run
//! use ftmp_runtime::{node, transport};
//! use ftmp_core::ids::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum};
//! use ftmp_net::McastAddr;
//!
//! let members: Vec<ProcessorId> = (1..=3).map(ProcessorId).collect();
//! let conn = ConnectionId::new(ObjectGroupId::new(1, 10), ObjectGroupId::new(1, 20));
//! let mut handles = Vec::new();
//! for &id in &members {
//!     let (rxq, rx) = transport::rx_channel();
//!     let selected = transport::open_transport(
//!         transport::TransportSpec {
//!             mode: transport::TransportMode::Auto,
//!             udp: transport::UdpConfig::default(),
//!             tcp: None, // supply a TcpConfig to survive multicast-less hosts
//!         },
//!         rxq,
//!     )
//!     .expect("open transport");
//!     let mut cfg = node::NodeConfig::founder(id, GroupId(1), McastAddr(0x3939), members.clone());
//!     cfg.connection = Some((conn, GroupId(1)));
//!     handles.push(node::spawn(
//!         cfg,
//!         node::NodeParts { transport: selected, rx, dlog: None, trace: None },
//!     ));
//! }
//! handles[0].publish(conn, RequestNum(1), bytes::Bytes::from_static(b"hello"));
//! for h in handles {
//!     let report = h.stop();
//!     assert!(report.delivered > 0);
//! }
//! ```

#![warn(missing_docs)]

pub mod node;
pub mod sys;
pub mod trace;
pub mod transport;

pub use node::{
    spawn, Command, NodeConfig, NodeParts, Role, RuntimeClock, RuntimeHandle, RuntimeReport,
};
pub use trace::{TraceWriter, TRACE_HEADER};
pub use transport::{
    multicast_available, open_transport, rx_channel, RxDatagram, RxQueue, RxReceiver, Selected,
    TcpConfig, TcpMeshTransport, Transport, TransportKind, TransportMode, TransportSpec, UdpConfig,
    UdpMulticastTransport,
};
