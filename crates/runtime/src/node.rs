//! The runtime event loop: one thread owning one `Processor`, fed by a
//! real transport.
//!
//! Thread model per node (DESIGN.md §14): the transport owns its reader
//! thread(s) which parse frames, filter by subscription, and push into an
//! unbounded crossbeam channel; this module's **engine thread** owns the
//! `Processor` and loops on `recv_timeout(next_tick_deadline)` — so it
//! wakes for whichever comes first, a datagram or the timer. A burst of
//! datagrams is drained under one `begin_batch`/`end_batch` window so the
//! Packer coalesces the replies exactly as the simulator's batched pump
//! does. Ticks fire on a fixed cadence (default 1 ms of real time = the
//! simulator's tick quantum) and their scheduling lag is recorded in the
//! `runtime_timer_lag_us` histogram.
//!
//! Time: the engine feeds the `Processor` `SimTime` values derived from a
//! monotonic clock, optionally anchored to a cluster-wide epoch
//! ([`RuntimeClock::with_unix_epoch`]) so trace timestamps from different
//! OS processes merge into one approximate global order. Oracle soundness
//! needs only per-node event order, which is exact by construction.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use bytes::Bytes;
use ftmp_core::actions::{Action, Delivery, ProtocolEvent};
use ftmp_core::config::ProtocolConfig;
use ftmp_core::durable::DeliveryLog;
use ftmp_core::ids::{ConnectionId, GroupId, ProcessorId, RequestNum};
use ftmp_core::observe::Observation;
use ftmp_core::{ClockMode, Processor};
use ftmp_net::{McastAddr, Packet, SimTime};
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::trace::TraceWriter;
use crate::transport::{RxReceiver, Selected, TransportKind};

/// Monotonic `SimTime` source, optionally anchored to a shared epoch.
#[derive(Debug, Clone)]
pub struct RuntimeClock {
    /// Signed: a member spawned *before* the shared epoch (the usual case
    /// for founders — the parent picks an epoch slightly in the future so
    /// every process is up by time zero) has a negative base and reads
    /// `SimTime(0)` until the epoch arrives.
    base_us: i64,
    anchor: Instant,
}

impl RuntimeClock {
    /// Time starts at 0 when this clock is created (single-process runs).
    pub fn process_start() -> Self {
        RuntimeClock {
            base_us: 0,
            anchor: Instant::now(),
        }
    }

    /// Time 0 is the given unix-epoch microsecond instant (cluster runs:
    /// the parent picks one epoch and passes it to every member, so all
    /// members' trace timestamps share an origin). Monotonic after anchor.
    pub fn with_unix_epoch(epoch_us: u64) -> Self {
        let now_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as i64)
            .unwrap_or(0);
        RuntimeClock {
            base_us: now_us - epoch_us as i64,
            anchor: Instant::now(),
        }
    }

    /// Current runtime time.
    pub fn now(&self) -> SimTime {
        let t = self.base_us + self.anchor.elapsed().as_micros() as i64;
        SimTime(t.max(0) as u64)
    }
}

/// How this node enters the group.
pub enum Role {
    /// Founding member: installs the initial view directly.
    Founder {
        /// The full founding membership (must include this node).
        members: Vec<ProcessorId>,
    },
    /// Joiner: subscribes and waits for a sponsor's AddProcessor.
    Joiner,
}

/// Configuration for one runtime node.
pub struct NodeConfig {
    /// This processor.
    pub id: ProcessorId,
    /// The (single) group this node participates in.
    pub group: GroupId,
    /// The group's multicast address.
    pub group_addr: McastAddr,
    /// Protocol parameters (real milliseconds; the defaults work).
    pub protocol: ProtocolConfig,
    /// Founder or joiner.
    pub role: Role,
    /// Incarnation number (0 fresh, bumped on crash-restart); recorded in
    /// the trace header so replay can retire/rejoin across restarts.
    pub incarnation: u32,
    /// Tick cadence (default 1 ms).
    pub tick: Duration,
    /// Time source.
    pub clock: RuntimeClock,
    /// Optional logical connection to bind at startup.
    pub connection: Option<(ConnectionId, GroupId)>,
    /// How long to keep pumping after `Command::Stop` so in-flight
    /// acks/retransmissions settle (default 200 ms).
    pub stop_grace: Duration,
}

impl NodeConfig {
    /// A founder node with defaults.
    pub fn founder(
        id: ProcessorId,
        group: GroupId,
        group_addr: McastAddr,
        members: Vec<ProcessorId>,
    ) -> Self {
        NodeConfig {
            id,
            group,
            group_addr,
            protocol: ProtocolConfig::default(),
            role: Role::Founder { members },
            incarnation: 0,
            tick: Duration::from_millis(1),
            clock: RuntimeClock::process_start(),
            connection: None,
            stop_grace: Duration::from_millis(200),
        }
    }

    /// A joiner node with defaults.
    pub fn joiner(id: ProcessorId, group: GroupId, group_addr: McastAddr) -> Self {
        NodeConfig {
            role: Role::Joiner,
            ..NodeConfig::founder(id, group, group_addr, Vec::new())
        }
    }
}

/// Control-plane commands accepted by a running node.
pub enum Command {
    /// Multicast an ordered request on a bound connection.
    Publish {
        /// The logical connection.
        conn: ConnectionId,
        /// ORB request number (duplicate-suppression key with `conn`).
        request: RequestNum,
        /// Request body.
        giop: Bytes,
    },
    /// Sponsor `ProcessorId` into the group, retrying until membership
    /// shows it (covers both first joins and post-crash re-adds, where the
    /// add must wait out conviction and reconfiguration of the old
    /// incarnation).
    AddMember(ProcessorId),
    /// Voluntarily remove a member (or self-leave).
    RemoveMember(ProcessorId),
    /// Begin orderly shutdown (drain for `stop_grace`, then exit).
    Stop,
}

/// Final accounting returned by the engine thread.
pub struct RuntimeReport {
    /// Which transport carried the run.
    pub transport: TransportKind,
    /// True when `Auto` selection fell back to TCP.
    pub fell_back: bool,
    /// Ordered deliveries handed to the application.
    pub delivered: u64,
    /// Wire frames written by the transport.
    pub sent_datagrams: u64,
    /// Datagrams received (post-filter).
    pub recv_datagrams: u64,
    /// Publishes rejected by flow control or connect gating.
    pub publish_rejected: u64,
    /// Timer ticks fired.
    pub ticks: u64,
    /// Final membership of the group as this node saw it.
    pub final_members: Vec<ProcessorId>,
    /// Runtime-layer metrics snapshot.
    pub metrics: ftmp_telemetry::Snapshot,
    /// The finished trace file, when tracing was on.
    pub trace_path: Option<PathBuf>,
}

/// Handle to a spawned node.
pub struct RuntimeHandle {
    commands: Sender<Command>,
    /// Ordered deliveries, as they happen.
    pub deliveries: Receiver<(SimTime, Delivery)>,
    /// Protocol events (membership changes, fault reports, ...).
    pub events: Receiver<(SimTime, ProtocolEvent)>,
    thread: JoinHandle<RuntimeReport>,
}

impl RuntimeHandle {
    /// Send a control command. Ignores send failure after the node exited.
    pub fn command(&self, cmd: Command) {
        let _ = self.commands.send(cmd);
    }

    /// Multicast an ordered request.
    pub fn publish(&self, conn: ConnectionId, request: RequestNum, giop: Bytes) {
        self.command(Command::Publish {
            conn,
            request,
            giop,
        });
    }

    /// Stop the node and collect its report.
    pub fn stop(self) -> RuntimeReport {
        let _ = self.commands.send(Command::Stop);
        self.join()
    }

    /// Wait for the node to exit on its own (after a prior `Stop`).
    pub fn join(self) -> RuntimeReport {
        self.thread.join().expect("runtime node thread panicked")
    }
}

/// Everything a node needs beyond its config.
pub struct NodeParts {
    /// The opened transport (from [`crate::transport::open_transport`]).
    pub transport: Selected,
    /// Consumer half of the transport's receive queue.
    pub rx: RxReceiver,
    /// Optional durable delivery log (ftmp-store) for crash-restart.
    pub dlog: Option<Box<dyn DeliveryLog>>,
    /// Optional observation trace recorder.
    pub trace: Option<TraceWriter>,
}

/// Spawn the engine thread for one node.
pub fn spawn(cfg: NodeConfig, parts: NodeParts) -> RuntimeHandle {
    let (cmd_tx, cmd_rx) = unbounded();
    let (dlv_tx, dlv_rx) = unbounded();
    let (evt_tx, evt_rx) = unbounded();
    let name = format!("ftmp-node-P{}", cfg.id.0);
    let thread = std::thread::Builder::new()
        .name(name)
        .spawn(move || run_node(cfg, parts, cmd_rx, dlv_tx, evt_tx))
        .expect("spawn runtime node");
    RuntimeHandle {
        commands: cmd_tx,
        deliveries: dlv_rx,
        events: evt_rx,
        thread,
    }
}

/// How often a pending AddMember is retried while the target is absent.
const ADD_RETRY: Duration = Duration::from_millis(200);

/// The protocol timestamp carried by an observation, if it has one.
///
/// Used as a hybrid-logical floor on recorded trace times: protocol
/// timestamps are cluster-coherent (Lamport-bumped on every receive), so
/// flooring a member's recorded `at` by every timestamp it has observed
/// bounds cross-process trace skew at one message latency even when the
/// members' wall clocks disagree.
fn obs_ts(obs: &Observation) -> Option<u64> {
    match obs {
        Observation::Delivered { ts, .. }
        | Observation::ViewInstalled { ts, .. }
        | Observation::Sent { ts, .. }
        | Observation::Acked { ts, .. }
        | Observation::Retained { ts, .. } => Some(ts.0),
        Observation::Reclaimed { stable_ts, .. } => Some(stable_ts.0),
        _ => None,
    }
}

struct Counters {
    reg: ftmp_telemetry::Registry,
    recv: ftmp_telemetry::CounterId,
    sent: ftmp_telemetry::CounterId,
    depth: ftmp_telemetry::GaugeId,
    lag: ftmp_telemetry::HistId,
    fallback: ftmp_telemetry::CounterId,
    ticks: ftmp_telemetry::CounterId,
    deliveries: ftmp_telemetry::CounterId,
}

impl Counters {
    fn new() -> Self {
        let mut reg = ftmp_telemetry::Registry::new();
        let recv = reg.counter("runtime_socket_recv_datagrams");
        let sent = reg.counter("runtime_socket_sent_datagrams");
        let depth = reg.gauge("runtime_recv_queue_depth");
        let lag = reg.histogram("runtime_timer_lag_us");
        let fallback = reg.counter("runtime_tcp_fallback_activations");
        let ticks = reg.counter("runtime_ticks");
        let deliveries = reg.counter("runtime_deliveries");
        Counters {
            reg,
            recv,
            sent,
            depth,
            lag,
            fallback,
            ticks,
            deliveries,
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run_node(
    cfg: NodeConfig,
    parts: NodeParts,
    cmd_rx: Receiver<Command>,
    dlv_tx: Sender<(SimTime, Delivery)>,
    evt_tx: Sender<(SimTime, ProtocolEvent)>,
) -> RuntimeReport {
    let NodeParts {
        transport,
        rx,
        dlog,
        mut trace,
    } = parts;
    let Selected {
        mut transport,
        kind,
        fell_back,
    } = transport;
    let mut ctr = Counters::new();
    if fell_back {
        ctr.reg.inc(ctr.fallback, 1);
    }

    // The engine runs a synchronized clock: message timestamps are floored
    // at real (epoch-anchored) time, so cross-process trace merge order
    // approximates true order.
    let mut engine = Processor::new(cfg.id, cfg.protocol, ClockMode::Synchronized { skew_us: 0 });
    if let Some(log) = dlog {
        engine.set_delivery_log(log);
    }
    if trace.is_some() {
        engine.enable_observations();
    }
    let now0 = cfg.clock.now();
    match cfg.role {
        Role::Founder { members } => {
            engine.create_group(now0, cfg.group, cfg.group_addr, members);
        }
        Role::Joiner => engine.expect_join(cfg.group, cfg.group_addr),
    }
    if let Some((conn, group)) = cfg.connection {
        engine.bind_connection(conn, group);
    }

    let mut actions: Vec<Action> = Vec::with_capacity(256);
    let mut observations: Vec<Observation> = Vec::with_capacity(256);
    let mut delivered = 0u64;
    let mut publish_rejected = 0u64;
    let mut ticks = 0u64;
    let mut pending_adds: Vec<(ProcessorId, Instant)> = Vec::new();
    let mut stop_at: Option<Instant> = None;
    let mut next_tick = Instant::now() + cfg.tick;

    let mut ts_floor = 0u64;
    macro_rules! pump {
        ($now:expr) => {{
            let now = $now;
            engine.drain_actions_into(&mut actions);
            for a in actions.drain(..) {
                match a {
                    Action::Send { addr, payload } => transport.send(addr, &payload),
                    Action::Join(addr) => transport.join(addr),
                    Action::Leave(addr) => transport.leave(addr),
                    Action::Deliver(d) => {
                        delivered += 1;
                        let _ = dlv_tx.send((SimTime(now.0.max(ts_floor)), d));
                    }
                    Action::Event(e) => {
                        let _ = evt_tx.send((SimTime(now.0.max(ts_floor)), e));
                    }
                    _ => {}
                }
            }
            if let Some(tr) = trace.as_mut() {
                engine.drain_observations_into(&mut observations);
                for obs in observations.drain(..) {
                    // Hybrid-logical stamp: never record an event earlier
                    // than a protocol timestamp this member has seen.
                    if let Some(ts) = obs_ts(&obs) {
                        ts_floor = ts_floor.max(ts);
                    }
                    let _ = tr.record(SimTime(now.0.max(ts_floor)), &obs);
                }
            }
        }};
    }

    loop {
        let now_i = Instant::now();
        let wait = next_tick.saturating_duration_since(now_i);
        match rx.recv_timeout(wait) {
            Ok(first) => {
                let now = cfg.clock.now();
                engine.begin_batch();
                engine.handle_packet(now, &Packet::new(cfg.id.0, first.addr, first.payload));
                // Drain the burst under the same Packer batch window.
                let mut budget = 64;
                while budget > 0 {
                    match rx.try_recv() {
                        Some(d) => {
                            engine.handle_packet(now, &Packet::new(cfg.id.0, d.addr, d.payload))
                        }
                        None => break,
                    }
                    budget -= 1;
                }
                engine.end_batch(now);
                pump!(now);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }

        let now_i = Instant::now();
        if now_i >= next_tick {
            let lag = now_i.saturating_duration_since(next_tick);
            ctr.reg.record(ctr.lag, lag.as_micros() as u64);
            let now = cfg.clock.now();
            engine.tick(now);
            ticks += 1;
            pump!(now);
            next_tick += cfg.tick;
            if now_i > next_tick + cfg.tick * 50 {
                // Way behind (debugger pause, CPU stall): resynchronize
                // rather than firing a catch-up burst.
                next_tick = now_i + cfg.tick;
            }

            pending_adds.retain_mut(|(member, last_try)| {
                let present = engine
                    .membership(cfg.group)
                    .is_some_and(|m| m.contains(member));
                if present {
                    return false;
                }
                if last_try.elapsed() >= ADD_RETRY && !engine.is_reconfiguring(cfg.group) {
                    engine.add_processor(cfg.clock.now(), cfg.group, *member);
                    *last_try = Instant::now();
                }
                true
            });
            if !pending_adds.is_empty() {
                pump!(cfg.clock.now());
            }
            ctr.reg.set(ctr.depth, rx.depth() as i64);
        }

        while let Ok(cmd) = cmd_rx.try_recv() {
            let now = cfg.clock.now();
            match cmd {
                Command::Publish {
                    conn,
                    request,
                    giop,
                } => {
                    if engine.multicast_request(now, conn, request, giop).is_err() {
                        publish_rejected += 1;
                    }
                    pump!(now);
                }
                Command::AddMember(p) => {
                    engine.add_processor(now, cfg.group, p);
                    pending_adds.push((p, Instant::now()));
                    pump!(now);
                }
                Command::RemoveMember(p) => {
                    engine.remove_processor(now, cfg.group, p);
                    pump!(now);
                }
                Command::Stop => {
                    if stop_at.is_none() {
                        stop_at = Some(Instant::now() + cfg.stop_grace);
                    }
                }
            }
        }
        if let Some(at) = stop_at {
            if Instant::now() >= at {
                break;
            }
        }
    }

    let now = cfg.clock.now();
    pump!(now);
    transport.shutdown();
    ctr.reg.inc(ctr.recv, rx.received());
    ctr.reg.inc(ctr.sent, transport.sent());
    ctr.reg.inc(ctr.ticks, ticks);
    ctr.reg.inc(ctr.deliveries, delivered);
    ctr.reg.set(ctr.depth, rx.depth() as i64);
    let trace_path = trace.and_then(|t| t.finish(SimTime(now.0.max(ts_floor))).ok());
    RuntimeReport {
        transport: kind,
        fell_back,
        delivered,
        sent_datagrams: transport.sent(),
        recv_datagrams: rx.received(),
        publish_rejected,
        ticks,
        final_members: engine.membership(cfg.group).unwrap_or_default(),
        metrics: ctr.reg.snapshot(),
        trace_path,
    }
}
