//! On-disk observation traces for real-socket runs.
//!
//! Each runtime node appends its `Observation` stream to a text file, one
//! line per observation, using the codec in `ftmp_core::observe` — the
//! same schema `ftmp-check`'s trace-file replay reads back. The format:
//!
//! ```text
//! ftmp-trace v1 node=2 inc=0
//! o 152340 ViewInstalled g=1 t=0 m=1,2,3
//! o 201882 Delivered g=1 c=1.10-1.20 r=1000001 s=1 q=3 t=201100
//! end 4000123
//! ```
//!
//! `o <at_us> <observation>` lines are written with one `write(2)` each,
//! straight to the file (no userspace buffering): a kill -9'd member's
//! trace survives in the page cache up to the last completed write, exactly
//! like the durable delivery log. A missing `end` marker tells the replay
//! reader the file belongs to a crashed incarnation, and an unparsable
//! final line is treated as a torn tail.

use ftmp_core::observe::Observation;
use ftmp_net::SimTime;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File header prefix (version-checked by the replay reader).
pub const TRACE_HEADER: &str = "ftmp-trace v1";

/// Appends one node's observation stream to a trace file.
pub struct TraceWriter {
    file: File,
    path: PathBuf,
    records: u64,
}

impl TraceWriter {
    /// Create (truncate) the trace file and write its header.
    pub fn create(path: impl AsRef<Path>, node: u32, incarnation: u32) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::create(&path)?;
        writeln!(file, "{TRACE_HEADER} node={node} inc={incarnation}")?;
        Ok(TraceWriter {
            file,
            path,
            records: 0,
        })
    }

    /// Append one observation.
    pub fn record(&mut self, at: SimTime, obs: &Observation) -> io::Result<()> {
        let line = format!("o {} {}\n", at.0, obs.encode_line());
        self.file.write_all(line.as_bytes())?;
        self.records += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Write the clean-shutdown marker and flush to disk.
    pub fn finish(mut self, at: SimTime) -> io::Result<PathBuf> {
        writeln!(self.file, "end {}", at.0)?;
        self.file.sync_data()?;
        Ok(self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmp_core::ids::{GroupId, ProcessorId, SeqNum, Timestamp};

    #[test]
    fn writes_header_records_and_end_marker() {
        let dir = ftmp_store::scratch_dir("runtime-trace");
        let path = dir.join("t.trc");
        let mut w = TraceWriter::create(&path, 7, 1).unwrap();
        w.record(
            SimTime(123),
            &Observation::Sent {
                group: GroupId(1),
                seq: SeqNum(9),
                ts: Timestamp(5),
            },
        )
        .unwrap();
        w.record(
            SimTime(456),
            &Observation::Suspected {
                group: GroupId(1),
                suspect: ProcessorId(3),
            },
        )
        .unwrap();
        assert_eq!(w.records(), 2);
        let path = w.finish(SimTime(999)).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "ftmp-trace v1 node=7 inc=1");
        assert_eq!(lines[1], "o 123 Sent g=1 q=9 t=5");
        assert_eq!(lines[2], "o 456 Suspected g=1 p=3");
        assert_eq!(lines[3], "end 999");
        let _ = std::fs::remove_dir_all(dir);
    }
}
