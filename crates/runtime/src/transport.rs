//! The two real transports behind the runtime event loop.
//!
//! The sans-io `Processor` addresses everything by [`McastAddr`] — an
//! opaque 32-bit multicast group. A [`Transport`] maps that address space
//! onto real sockets:
//!
//! - [`UdpMulticastTransport`] maps each `McastAddr` to a 239.77.x.y IPv4
//!   multicast group on the loopback interface. All members share one UDP
//!   port (`SO_REUSEPORT`), so the kernel fans each datagram out to every
//!   subscribed socket — true multicast semantics, one send per datagram.
//! - [`TcpMeshTransport`] is the fallback for environments without working
//!   loopback multicast (most containers): a full mesh of TCP streams, one
//!   listener per member, where each logical multicast is written to every
//!   peer plus a local self-copy.
//!
//! Both transports frame each datagram with the destination `McastAddr`,
//! and the **receiver** filters against its local subscription set. That
//! reproduces the simulator's exact semantics: `Processor::handle_packet`
//! ignores packet envelopes, so subscription filtering is the transport's
//! job (the kernel alone can't do it — the shared multicast port delivers
//! every joined group's traffic to every socket, and a TCP stream carries
//! all groups).
//!
//! Selection is probe-based: [`open_transport`] in `Auto` mode stands up
//! the UDP path and sends itself a probe datagram; only if the probe comes
//! back is multicast trusted. Any failure — no multicast route, join
//! refused, probe lost — falls back to TCP.

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ftmp_net::McastAddr;

use bytes::Bytes;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::sys;

/// Reserved `McastAddr` used by the multicast availability probe. Never
/// handed to the `Processor`.
pub const PROBE_ADDR: McastAddr = McastAddr(u32::MAX);

/// Frame magic for UDP datagrams ("FTMR").
const UDP_MAGIC: [u8; 4] = *b"FTMR";

/// One received datagram, already filtered to a subscribed group.
#[derive(Debug, Clone)]
pub struct RxDatagram {
    /// Destination group (from the frame header).
    pub addr: McastAddr,
    /// FTMP payload.
    pub payload: Bytes,
}

/// Producer half of the receive queue (held by transport reader threads).
#[derive(Clone)]
pub struct RxQueue {
    tx: Sender<RxDatagram>,
    depth: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
}

impl RxQueue {
    fn push(&self, d: RxDatagram) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.received.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(d);
    }
}

/// Consumer half of the receive queue (held by the event loop).
pub struct RxReceiver {
    rx: Receiver<RxDatagram>,
    depth: Arc<AtomicU64>,
    received: Arc<AtomicU64>,
}

impl RxReceiver {
    /// Block up to `timeout` for the next datagram.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<RxDatagram, RecvTimeoutError> {
        let d = self.rx.recv_timeout(timeout)?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Ok(d)
    }

    /// Non-blocking pop.
    pub fn try_recv(&self) -> Option<RxDatagram> {
        let d = self.rx.try_recv().ok()?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Some(d)
    }

    /// Current queue depth (datagrams received but not yet consumed).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Total datagrams ever enqueued by the transport.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

/// Create the receive queue shared between a transport and an event loop.
pub fn rx_channel() -> (RxQueue, RxReceiver) {
    let (tx, rx) = unbounded();
    let depth = Arc::new(AtomicU64::new(0));
    let received = Arc::new(AtomicU64::new(0));
    (
        RxQueue {
            tx,
            depth: Arc::clone(&depth),
            received: Arc::clone(&received),
        },
        RxReceiver {
            rx,
            depth,
            received,
        },
    )
}

/// Which real transport is carrying the group traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// UDP multicast on loopback (the primary path).
    UdpMulticast,
    /// Full-mesh TCP fallback.
    TcpMesh,
}

impl TransportKind {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            TransportKind::UdpMulticast => "udp-multicast",
            TransportKind::TcpMesh => "tcp-mesh",
        }
    }
}

/// A real transport carrying `Processor` datagrams.
pub trait Transport: Send {
    /// Which path this is.
    fn kind(&self) -> TransportKind;
    /// Transmit one logical multicast datagram.
    fn send(&mut self, dst: McastAddr, payload: &[u8]);
    /// Subscribe to a group (from `Action::Join`).
    fn join(&mut self, addr: McastAddr);
    /// Unsubscribe from a group (from `Action::Leave`).
    fn leave(&mut self, addr: McastAddr);
    /// Wire-level datagrams/frames written so far.
    fn sent(&self) -> u64;
    /// Stop reader/connector threads. Idempotent.
    fn shutdown(&mut self);
}

/// Shared subscription set, consulted by reader threads on every frame.
type Subs = Arc<Mutex<HashSet<u32>>>;

/// Map a protocol `McastAddr` onto a loopback-scoped 239.77.x.y group.
/// Collisions between distinct `McastAddr`s are harmless: the frame header
/// carries the exact 32-bit address and receivers filter on it.
pub fn multicast_group_ip(addr: McastAddr) -> Ipv4Addr {
    let folded = (addr.0 ^ (addr.0 >> 16)) as u16;
    Ipv4Addr::new(239, 77, (folded >> 8) as u8, (folded & 0xff) as u8)
}

fn udp_frame(dst: McastAddr, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(8 + payload.len());
    f.extend_from_slice(&UDP_MAGIC);
    f.extend_from_slice(&dst.0.to_le_bytes());
    f.extend_from_slice(payload);
    f
}

fn parse_udp_frame(buf: &[u8]) -> Option<(McastAddr, &[u8])> {
    if buf.len() < 8 || buf[..4] != UDP_MAGIC {
        return None;
    }
    let dst = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    Some((McastAddr(dst), &buf[8..]))
}

/// Configuration for the UDP multicast path.
#[derive(Debug, Clone)]
pub struct UdpConfig {
    /// Shared port every member binds (with `SO_REUSEPORT`).
    pub port: u16,
    /// How long the self-probe waits for its own loopback copy before the
    /// path is declared unavailable. `Duration::ZERO` forces unavailability
    /// (used by tests to exercise the fallback selection).
    pub probe_timeout: Duration,
}

impl Default for UdpConfig {
    fn default() -> Self {
        UdpConfig {
            port: 47_600,
            probe_timeout: Duration::from_millis(400),
        }
    }
}

/// UDP multicast on loopback. See module docs.
pub struct UdpMulticastTransport {
    sock: UdpSocket,
    port: u16,
    subs: Subs,
    /// Kernel-level group memberships, refcounted by mapped IP (distinct
    /// `McastAddr`s may fold to the same 239.77.x.y group).
    joined: HashMap<Ipv4Addr, u32>,
    sent: u64,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
}

/// Join `PROBE_ADDR`'s group and wait for our own probe datagram to come
/// back over loopback. Proves bind, join, send route and receive all work.
fn probe_multicast(sock: &UdpSocket, port: u16, timeout: Duration) -> io::Result<()> {
    let probe_ip = multicast_group_ip(PROBE_ADDR);
    sock.join_multicast_v4(&probe_ip, &Ipv4Addr::LOCALHOST)?;
    let nonce = std::process::id().to_le_bytes();
    let frame = udp_frame(PROBE_ADDR, &nonce);
    let deadline = Instant::now() + timeout;
    sock.set_read_timeout(Some(
        Duration::from_millis(50).min(timeout.max(Duration::from_millis(1))),
    ))?;
    let mut buf = [0u8; 256];
    while Instant::now() < deadline {
        sock.send_to(&frame, (probe_ip, port))?;
        match sock.recv_from(&mut buf) {
            Ok((n, _)) => {
                if let Some((dst, payload)) = parse_udp_frame(&buf[..n]) {
                    if dst == PROBE_ADDR && payload == nonce {
                        return Ok(());
                    }
                    // Another member's probe — keep waiting for ours.
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        "multicast self-probe timed out (no loopback multicast)",
    ))
}

/// Check whether loopback UDP multicast works here, without keeping any
/// state. Used to pick one transport uniformly across a whole cluster.
pub fn multicast_available(cfg: &UdpConfig) -> bool {
    let sock = match sys::udp_socket_shared(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, cfg.port)) {
        Ok(s) => s,
        Err(_) => return false,
    };
    if sock.set_multicast_loop_v4(true).is_err() {
        return false;
    }
    if sys::set_multicast_if_loopback(&sock).is_err() {
        return false;
    }
    probe_multicast(&sock, cfg.port, cfg.probe_timeout).is_ok()
}

impl UdpMulticastTransport {
    /// Bind the shared port, prove multicast works with a self-probe, and
    /// start the reader thread. Any failure means "use the TCP fallback".
    pub fn open(cfg: &UdpConfig, rxq: RxQueue) -> io::Result<Self> {
        let sock = sys::udp_socket_shared(SocketAddrV4::new(Ipv4Addr::UNSPECIFIED, cfg.port))?;
        sock.set_multicast_loop_v4(true)?;
        sys::set_multicast_if_loopback(&sock)?;
        probe_multicast(&sock, cfg.port, cfg.probe_timeout)?;

        let subs: Subs = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let reader_sock = sock.try_clone()?;
        reader_sock.set_read_timeout(Some(Duration::from_millis(100)))?;
        let reader_subs = Arc::clone(&subs);
        let reader_stop = Arc::clone(&stop);
        let reader = std::thread::Builder::new()
            .name("ftmp-udp-rx".into())
            .spawn(move || {
                let mut buf = vec![0u8; 65_536];
                while !reader_stop.load(Ordering::Relaxed) {
                    match reader_sock.recv_from(&mut buf) {
                        Ok((n, _)) => {
                            if let Some((dst, payload)) = parse_udp_frame(&buf[..n]) {
                                if dst == PROBE_ADDR {
                                    continue;
                                }
                                let subscribed = reader_subs
                                    .lock()
                                    .map(|s| s.contains(&dst.0))
                                    .unwrap_or(false);
                                if subscribed {
                                    rxq.push(RxDatagram {
                                        addr: dst,
                                        payload: Bytes::from(payload.to_vec()),
                                    });
                                }
                            }
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut => {}
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn udp reader");

        Ok(UdpMulticastTransport {
            sock,
            port: cfg.port,
            subs,
            joined: HashMap::new(),
            sent: 0,
            stop,
            reader: Some(reader),
        })
    }
}

impl Transport for UdpMulticastTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::UdpMulticast
    }

    fn send(&mut self, dst: McastAddr, payload: &[u8]) {
        let frame = udp_frame(dst, payload);
        if self
            .sock
            .send_to(&frame, (multicast_group_ip(dst), self.port))
            .is_ok()
        {
            self.sent += 1;
        }
    }

    fn join(&mut self, addr: McastAddr) {
        if let Ok(mut s) = self.subs.lock() {
            s.insert(addr.0);
        }
        let ip = multicast_group_ip(addr);
        let refs = self.joined.entry(ip).or_insert(0);
        if *refs == 0 {
            // Best effort: a folded-IP collision with an existing kernel
            // membership is fine, the frame filter is exact.
            let _ = self.sock.join_multicast_v4(&ip, &Ipv4Addr::LOCALHOST);
        }
        *refs += 1;
    }

    fn leave(&mut self, addr: McastAddr) {
        if let Ok(mut s) = self.subs.lock() {
            s.remove(&addr.0);
        }
        let ip = multicast_group_ip(addr);
        if let Some(refs) = self.joined.get_mut(&ip) {
            *refs = refs.saturating_sub(1);
            if *refs == 0 {
                let _ = self.sock.leave_multicast_v4(&ip, &Ipv4Addr::LOCALHOST);
                self.joined.remove(&ip);
            }
        }
    }

    fn sent(&self) -> u64 {
        self.sent
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

impl Drop for UdpMulticastTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Configuration for the TCP mesh fallback.
pub struct TcpConfig {
    /// This member's pre-bound listener (bind with
    /// [`sys::tcp_listener_reuse`] or `TcpListener::bind`).
    pub listener: TcpListener,
    /// The other members' listener addresses. Unreachable peers are retried
    /// forever, which is how a restarted member re-enters the mesh.
    pub peers: Vec<SocketAddr>,
    /// Delay between reconnect sweeps.
    pub reconnect: Duration,
}

impl TcpConfig {
    /// A mesh config with the default reconnect cadence.
    pub fn new(listener: TcpListener, peers: Vec<SocketAddr>) -> Self {
        TcpConfig {
            listener,
            peers,
            reconnect: Duration::from_millis(100),
        }
    }
}

/// Full-mesh TCP fallback. See module docs.
pub struct TcpMeshTransport {
    subs: Subs,
    rxq: RxQueue,
    slots: Arc<Vec<Mutex<Option<TcpStream>>>>,
    sent: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// TCP frame: u32-LE dst addr, u32-LE payload length, payload.
fn tcp_frame(dst: McastAddr, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(8 + payload.len());
    f.extend_from_slice(&dst.0.to_le_bytes());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

/// Per-stream reader: buffers bytes and delivers every complete frame that
/// matches the subscription set.
fn tcp_reader(mut stream: TcpStream, subs: Subs, rxq: RxQueue, stop: Arc<AtomicBool>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut acc: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut tmp = [0u8; 16 * 1024];
    while !stop.load(Ordering::Relaxed) {
        match stream.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => {
                acc.extend_from_slice(&tmp[..n]);
                let mut off = 0usize;
                while acc.len() - off >= 8 {
                    let dst =
                        u32::from_le_bytes([acc[off], acc[off + 1], acc[off + 2], acc[off + 3]]);
                    let len = u32::from_le_bytes([
                        acc[off + 4],
                        acc[off + 5],
                        acc[off + 6],
                        acc[off + 7],
                    ]) as usize;
                    if len > 1 << 24 {
                        return; // corrupt stream; abandon it
                    }
                    if acc.len() - off - 8 < len {
                        break;
                    }
                    let payload = &acc[off + 8..off + 8 + len];
                    let subscribed = subs.lock().map(|s| s.contains(&dst)).unwrap_or(false);
                    if subscribed {
                        rxq.push(RxDatagram {
                            addr: McastAddr(dst),
                            payload: Bytes::from(payload.to_vec()),
                        });
                    }
                    off += 8 + len;
                }
                acc.drain(..off);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(_) => break,
        }
    }
}

impl TcpMeshTransport {
    /// Start the accept loop and the reconnect sweeper.
    pub fn open(cfg: TcpConfig, rxq: RxQueue) -> io::Result<Self> {
        let subs: Subs = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let slots: Arc<Vec<Mutex<Option<TcpStream>>>> =
            Arc::new(cfg.peers.iter().map(|_| Mutex::new(None)).collect());
        let mut threads = Vec::new();

        cfg.listener.set_nonblocking(true)?;
        {
            let (listener, subs, rxq, stop) = (
                cfg.listener,
                Arc::clone(&subs),
                rxq.clone(),
                Arc::clone(&stop),
            );
            threads.push(
                std::thread::Builder::new()
                    .name("ftmp-tcp-accept".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            match listener.accept() {
                                Ok((stream, _)) => {
                                    let _ = stream.set_nonblocking(false);
                                    let (subs, rxq, stop) =
                                        (Arc::clone(&subs), rxq.clone(), Arc::clone(&stop));
                                    // Reader threads exit on stream close or
                                    // stop; they are not joined individually.
                                    let _ = std::thread::Builder::new()
                                        .name("ftmp-tcp-rx".into())
                                        .spawn(move || tcp_reader(stream, subs, rxq, stop));
                                }
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(20));
                                }
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn tcp accept"),
            );
        }
        {
            let (peers, slots, stop, reconnect) = (
                cfg.peers.clone(),
                Arc::clone(&slots),
                Arc::clone(&stop),
                cfg.reconnect,
            );
            threads.push(
                std::thread::Builder::new()
                    .name("ftmp-tcp-connect".into())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            for (i, peer) in peers.iter().enumerate() {
                                let vacant = slots[i].lock().map(|s| s.is_none()).unwrap_or(false);
                                if !vacant {
                                    continue;
                                }
                                if let Ok(stream) =
                                    TcpStream::connect_timeout(peer, Duration::from_millis(150))
                                {
                                    let _ = stream.set_nodelay(true);
                                    if let Ok(mut slot) = slots[i].lock() {
                                        *slot = Some(stream);
                                    }
                                }
                            }
                            std::thread::sleep(reconnect);
                        }
                    })
                    .expect("spawn tcp connect"),
            );
        }

        Ok(TcpMeshTransport {
            subs,
            rxq,
            slots,
            sent: Arc::new(AtomicU64::new(0)),
            stop,
            threads,
        })
    }
}

impl Transport for TcpMeshTransport {
    fn kind(&self) -> TransportKind {
        TransportKind::TcpMesh
    }

    fn send(&mut self, dst: McastAddr, payload: &[u8]) {
        let frame = tcp_frame(dst, payload);
        for slot in self.slots.iter() {
            let Ok(mut guard) = slot.lock() else { continue };
            let ok = match guard.as_mut() {
                Some(stream) => stream.write_all(&frame).is_ok(),
                None => continue,
            };
            if ok {
                self.sent.fetch_add(1, Ordering::Relaxed);
            } else {
                *guard = None; // dead peer; the sweeper will reconnect
            }
        }
        // The kernel loops multicast back to the sender; the mesh must do
        // the same so self-addressed traffic (and loop-delivery dedupe
        // paths) behave identically on both transports.
        let subscribed = self
            .subs
            .lock()
            .map(|s| s.contains(&dst.0))
            .unwrap_or(false);
        if subscribed {
            self.rxq.push(RxDatagram {
                addr: dst,
                payload: Bytes::from(payload.to_vec()),
            });
        }
    }

    fn join(&mut self, addr: McastAddr) {
        if let Ok(mut s) = self.subs.lock() {
            s.insert(addr.0);
        }
    }

    fn leave(&mut self, addr: McastAddr) {
        if let Ok(mut s) = self.subs.lock() {
            s.remove(&addr.0);
        }
    }

    fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for TcpMeshTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How [`open_transport`] picks a path.
pub enum TransportMode {
    /// Probe multicast; fall back to TCP if the probe fails.
    Auto,
    /// Require UDP multicast (error if the probe fails).
    UdpMulticast,
    /// Use the TCP mesh unconditionally.
    TcpMesh,
}

/// Everything needed to open either path.
pub struct TransportSpec {
    /// Selection policy.
    pub mode: TransportMode,
    /// UDP path parameters.
    pub udp: UdpConfig,
    /// TCP fallback parameters (required unless mode is `UdpMulticast`).
    pub tcp: Option<TcpConfig>,
}

/// An opened transport plus how it was chosen.
pub struct Selected {
    /// The transport.
    pub transport: Box<dyn Transport>,
    /// Which path it is.
    pub kind: TransportKind,
    /// True when `Auto` wanted multicast but had to fall back to TCP.
    pub fell_back: bool,
}

/// Open a transport per `spec`. In `Auto` mode the UDP path is stood up and
/// self-probed; any failure selects the TCP mesh and reports `fell_back`.
pub fn open_transport(spec: TransportSpec, rxq: RxQueue) -> io::Result<Selected> {
    let open_tcp = |tcp: Option<TcpConfig>, rxq: RxQueue, fell_back: bool| {
        let cfg = tcp.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "TCP fallback not configured")
        })?;
        Ok(Selected {
            transport: Box::new(TcpMeshTransport::open(cfg, rxq)?) as Box<dyn Transport>,
            kind: TransportKind::TcpMesh,
            fell_back,
        })
    };
    match spec.mode {
        TransportMode::TcpMesh => open_tcp(spec.tcp, rxq, false),
        TransportMode::UdpMulticast => Ok(Selected {
            transport: Box::new(UdpMulticastTransport::open(&spec.udp, rxq)?),
            kind: TransportKind::UdpMulticast,
            fell_back: false,
        }),
        TransportMode::Auto => match UdpMulticastTransport::open(&spec.udp, rxq.clone()) {
            Ok(t) => Ok(Selected {
                transport: Box::new(t),
                kind: TransportKind::UdpMulticast,
                fell_back: false,
            }),
            Err(_) => open_tcp(spec.tcp, rxq, true),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn udp_frame_round_trip_and_rejects() {
        let frame = udp_frame(McastAddr(0xDEAD_BEEF), b"hi");
        let (dst, payload) = parse_udp_frame(&frame).unwrap();
        assert_eq!(dst, McastAddr(0xDEAD_BEEF));
        assert_eq!(payload, b"hi");
        assert!(parse_udp_frame(b"FTM").is_none());
        assert!(parse_udp_frame(b"XXXX\x01\x00\x00\x00").is_none());
    }

    #[test]
    fn mcast_addr_maps_into_239_77() {
        for a in [0u32, 1, 0xFFFF_FFFF, 0x1234_5678] {
            let ip = multicast_group_ip(McastAddr(a));
            assert!(ip.is_multicast(), "{ip} not multicast");
            assert_eq!(ip.octets()[0], 239);
            assert_eq!(ip.octets()[1], 77);
        }
    }
}
