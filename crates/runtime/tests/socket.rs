//! Real-socket integration tests.
//!
//! The TCP-mesh tests are always on: they need nothing but loopback TCP,
//! which every CI container has. The UDP multicast test is gated behind
//! `FTMP_SOCKET_TESTS=1` *and* a live multicast probe, because loopback
//! multicast is typically unavailable in containers — that combination is
//! exactly why the runtime has a fallback path, and the fallback-selection
//! test pins that the `Auto` mode actually takes it.

use bytes::Bytes;
use ftmp_core::ids::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum};
use ftmp_net::McastAddr;
use ftmp_runtime::{node, sys, transport};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::{Duration, Instant};

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 10), ObjectGroupId::new(1, 20))
}

const GROUP: GroupId = GroupId(1);
const GROUP_ADDR: McastAddr = McastAddr(0x4654_4D31);

/// Stand up `n` founders over the TCP mesh (ephemeral ports), or over UDP
/// multicast when `udp_port` is given.
fn spawn_group(n: u32, udp_port: Option<u16>) -> Vec<node::RuntimeHandle> {
    let members: Vec<ProcessorId> = (1..=n).map(ProcessorId).collect();
    let mut listeners = Vec::new();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    if udp_port.is_none() {
        for _ in 0..n {
            let l = sys::tcp_listener_reuse(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))
                .expect("bind listener");
            addrs.push(l.local_addr().expect("listener addr"));
            listeners.push(l);
        }
    }
    let mut handles = Vec::new();
    for (i, &id) in members.iter().enumerate() {
        let (rxq, rx) = transport::rx_channel();
        let spec = match udp_port {
            Some(port) => transport::TransportSpec {
                mode: transport::TransportMode::UdpMulticast,
                udp: transport::UdpConfig {
                    port,
                    ..transport::UdpConfig::default()
                },
                tcp: None,
            },
            None => {
                let peers = addrs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, a)| *a)
                    .collect();
                transport::TransportSpec {
                    mode: transport::TransportMode::TcpMesh,
                    udp: transport::UdpConfig::default(),
                    tcp: Some(transport::TcpConfig::new(listeners.remove(0), peers)),
                }
            }
        };
        let selected = transport::open_transport(spec, rxq).expect("open transport");
        let mut cfg = node::NodeConfig::founder(id, GROUP, GROUP_ADDR, members.clone());
        cfg.connection = Some((conn(), GROUP));
        handles.push(node::spawn(
            cfg,
            node::NodeParts {
                transport: selected,
                rx,
                dlog: None,
                trace: None,
            },
        ));
    }
    handles
}

/// Drive the standard agreement workload: every member publishes `per_node`
/// requests, every member must deliver all of them in the same total order.
fn run_agreement(handles: Vec<node::RuntimeHandle>, per_node: u64) -> Vec<node::RuntimeReport> {
    let n = handles.len() as u64;
    // Let the transport links (TCP mesh reconnect sweep) come up first.
    std::thread::sleep(Duration::from_millis(400));
    for (i, h) in handles.iter().enumerate() {
        let id = i as u64 + 1;
        for k in 0..per_node {
            h.publish(
                conn(),
                RequestNum(id * 100 + k),
                Bytes::from(vec![id as u8; 64]),
            );
        }
    }
    let want = n * per_node;
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut orders: Vec<Vec<u64>> = vec![Vec::new(); handles.len()];
    while orders.iter().any(|o| (o.len() as u64) < want) && Instant::now() < deadline {
        for (i, h) in handles.iter().enumerate() {
            while let Ok((_, d)) = h.deliveries.recv_timeout(Duration::from_millis(10)) {
                orders[i].push(d.request_num.0);
            }
        }
    }
    for (i, o) in orders.iter().enumerate() {
        assert_eq!(
            o.len() as u64,
            want,
            "node {} delivered {} of {want}",
            i + 1,
            o.len()
        );
    }
    for o in &orders[1..] {
        assert_eq!(o, &orders[0], "total order diverged between members");
    }
    // Stop everyone concurrently: a sequential stop would leave the last
    // members running long enough to convict the already-stopped ones.
    for h in &handles {
        h.command(node::Command::Stop);
    }
    handles.into_iter().map(node::RuntimeHandle::join).collect()
}

#[test]
fn tcp_mesh_three_nodes_agree_on_total_order() {
    let reports = run_agreement(spawn_group(3, None), 5);
    for r in &reports {
        assert_eq!(r.transport, transport::TransportKind::TcpMesh);
        assert!(!r.fell_back, "TcpMesh was forced, not a fallback");
        assert!(r.delivered >= 15);
        assert!(r.sent_datagrams > 0);
        assert!(r.recv_datagrams > 0);
        assert_eq!(
            r.final_members,
            vec![ProcessorId(1), ProcessorId(2), ProcessorId(3)]
        );
        assert_eq!(
            r.metrics.counter("runtime_deliveries"),
            Some(r.delivered),
            "telemetry snapshot covers the runtime layer"
        );
        assert_eq!(
            r.metrics.counter("runtime_tcp_fallback_activations"),
            Some(0)
        );
        assert!(r.metrics.histogram("runtime_timer_lag_us").is_some());
    }
}

/// `Auto` selection must pick the TCP mesh when the multicast path cannot
/// prove itself. A zero probe budget makes the self-probe fail on every
/// host — including ones where multicast actually works — so this test pins
/// the fallback path deterministically, exactly as a multicast-less CI
/// container would exercise it.
#[test]
fn auto_mode_falls_back_to_tcp_when_multicast_probe_fails() {
    let listener =
        sys::tcp_listener_reuse(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0)).expect("listener");
    let (rxq, _rx) = transport::rx_channel();
    let selected = transport::open_transport(
        transport::TransportSpec {
            mode: transport::TransportMode::Auto,
            udp: transport::UdpConfig {
                probe_timeout: Duration::ZERO,
                ..transport::UdpConfig::default()
            },
            tcp: Some(transport::TcpConfig::new(listener, Vec::new())),
        },
        rxq,
    )
    .expect("fallback must open");
    assert_eq!(selected.kind, transport::TransportKind::TcpMesh);
    assert!(selected.fell_back, "Auto must report the fallback");
}

/// Without a TCP fallback configured, a failed probe is a hard error.
#[test]
fn auto_mode_errors_without_fallback_when_probe_fails() {
    let (rxq, _rx) = transport::rx_channel();
    let err = transport::open_transport(
        transport::TransportSpec {
            mode: transport::TransportMode::Auto,
            udp: transport::UdpConfig {
                probe_timeout: Duration::ZERO,
                ..transport::UdpConfig::default()
            },
            tcp: None,
        },
        rxq,
    );
    assert!(err.is_err());
}

/// Real UDP multicast on loopback. Gated: set `FTMP_SOCKET_TESTS=1` on a
/// host with multicast-capable loopback (most bare-metal Linux; most
/// containers are not).
#[test]
fn udp_multicast_three_nodes_agree_on_total_order() {
    if std::env::var("FTMP_SOCKET_TESTS").as_deref() != Ok("1") {
        eprintln!("skipping: FTMP_SOCKET_TESTS=1 not set");
        return;
    }
    let udp = transport::UdpConfig {
        port: 47_611,
        ..transport::UdpConfig::default()
    };
    if !transport::multicast_available(&udp) {
        eprintln!("skipping: loopback multicast unavailable on this host");
        return;
    }
    let reports = run_agreement(spawn_group(3, Some(udp.port)), 5);
    for r in &reports {
        assert_eq!(r.transport, transport::TransportKind::UdpMulticast);
        assert!(r.delivered >= 15);
    }
}
