//! Per-connection message log (§4).
//!
//! The paper uses the `(connection id, request number)` pair "to match a
//! request with its corresponding reply which is necessary, for example,
//! when replaying messages from a log". This log records the ordered
//! delivery stream per connection and answers exactly that query, plus
//! replay iteration for recovering replicas.

use bytes::Bytes;
use ftmp_core::{ConnectionId, ProcessorId, RequestNum, Timestamp};
use std::collections::BTreeMap;

/// Direction of a logged message, from the connection's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogKind {
    /// Client group → server group.
    Request,
    /// Server group → client group.
    Reply,
}

/// One logged delivery.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Request number on the connection.
    pub request_num: RequestNum,
    /// Request or reply.
    pub kind: LogKind,
    /// Originating processor.
    pub source: ProcessorId,
    /// Total-order timestamp at which it was delivered.
    pub ts: Timestamp,
    /// The GIOP bytes.
    pub giop: Bytes,
}

impl LogEntry {
    /// Classify raw delivered GIOP bytes into a replayable entry — the
    /// bridge from a durable delivered-message record (`ftmp-store`) back
    /// into the in-memory replay log after a restart. Returns `None` for
    /// messages with no replay semantics (Locate traffic, cancels, closes,
    /// undecodable bytes).
    pub fn classify(
        request_num: RequestNum,
        source: ProcessorId,
        ts: Timestamp,
        giop: Bytes,
    ) -> Option<Self> {
        use crate::giop_map::{parse, Inbound};
        let kind = match parse(&giop).ok()? {
            Inbound::Request { .. } => LogKind::Request,
            Inbound::Reply { .. } | Inbound::ExceptionReply { .. } => LogKind::Reply,
            _ => return None,
        };
        Some(LogEntry {
            request_num,
            kind,
            source,
            ts,
            giop,
        })
    }
}

/// An append-only, per-connection log of ordered deliveries.
#[derive(Debug, Default)]
pub struct MessageLog {
    conns: BTreeMap<ConnectionId, Vec<LogEntry>>,
}

impl MessageLog {
    /// Append a delivery.
    pub fn append(&mut self, conn: ConnectionId, entry: LogEntry) {
        self.conns.entry(conn).or_default().push(entry);
    }

    /// All entries for a connection, in delivery order.
    pub fn entries(&self, conn: ConnectionId) -> &[LogEntry] {
        self.conns.get(&conn).map_or(&[], |v| v.as_slice())
    }

    /// Match a request with its reply: the reply logged for the same
    /// `(connection, request number)`.
    pub fn reply_for(&self, conn: ConnectionId, num: RequestNum) -> Option<&LogEntry> {
        self.entries(conn)
            .iter()
            .find(|e| e.kind == LogKind::Reply && e.request_num == num)
    }

    /// The request entry for a number.
    pub fn request_for(&self, conn: ConnectionId, num: RequestNum) -> Option<&LogEntry> {
        self.entries(conn)
            .iter()
            .find(|e| e.kind == LogKind::Request && e.request_num == num)
    }

    /// Replay every logged entry for `conn` delivered after `after` — used
    /// to bring a recovering replica forward from a snapshot point.
    pub fn replay_after(
        &self,
        conn: ConnectionId,
        after: Timestamp,
    ) -> impl Iterator<Item = &LogEntry> {
        self.entries(conn).iter().filter(move |e| e.ts > after)
    }

    /// Total entries across connections.
    pub fn len(&self) -> usize {
        self.conns.values().map(Vec::len).sum()
    }

    /// True when nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Trim entries older than `before` for bounded storage (the ordered
    /// prefix they represent is captured by application snapshots).
    pub fn trim_before(&mut self, conn: ConnectionId, before: Timestamp) -> usize {
        let Some(v) = self.conns.get_mut(&conn) else {
            return 0;
        };
        let n0 = v.len();
        v.retain(|e| e.ts >= before);
        n0 - v.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmp_core::ObjectGroupId;

    fn conn() -> ConnectionId {
        ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
    }

    fn entry(num: u64, kind: LogKind, ts: u64) -> LogEntry {
        LogEntry {
            request_num: RequestNum(num),
            kind,
            source: ProcessorId(1),
            ts: Timestamp(ts),
            giop: Bytes::from_static(b"g"),
        }
    }

    #[test]
    fn request_reply_matching() {
        let mut log = MessageLog::default();
        log.append(conn(), entry(1, LogKind::Request, 10));
        log.append(conn(), entry(2, LogKind::Request, 11));
        log.append(conn(), entry(1, LogKind::Reply, 12));
        let r = log.reply_for(conn(), RequestNum(1)).unwrap();
        assert_eq!(r.ts, Timestamp(12));
        assert!(log.reply_for(conn(), RequestNum(2)).is_none());
        assert_eq!(
            log.request_for(conn(), RequestNum(2)).unwrap().ts,
            Timestamp(11)
        );
    }

    #[test]
    fn replay_after_point() {
        let mut log = MessageLog::default();
        for i in 1..=5 {
            log.append(conn(), entry(i, LogKind::Request, i * 10));
        }
        let replayed: Vec<u64> = log
            .replay_after(conn(), Timestamp(20))
            .map(|e| e.request_num.0)
            .collect();
        assert_eq!(replayed, vec![3, 4, 5]);
    }

    #[test]
    fn trim_bounds_storage() {
        let mut log = MessageLog::default();
        for i in 1..=10 {
            log.append(conn(), entry(i, LogKind::Reply, i));
        }
        assert_eq!(log.len(), 10);
        let trimmed = log.trim_before(conn(), Timestamp(6));
        assert_eq!(trimmed, 5);
        assert_eq!(log.len(), 5);
        assert!(log.reply_for(conn(), RequestNum(3)).is_none());
        assert!(log.reply_for(conn(), RequestNum(7)).is_some());
    }

    #[test]
    fn empty_log_behaviour() {
        let log = MessageLog::default();
        assert!(log.is_empty());
        assert!(log.entries(conn()).is_empty());
        assert!(log.reply_for(conn(), RequestNum(1)).is_none());
    }
}
