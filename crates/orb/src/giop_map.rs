//! The concrete GIOP mapping: building and parsing the GIOP messages FTMP
//! carries (§3.1).
//!
//! The `(connection id, request number)` pair travels in the FTMP Regular
//! body, *not* in GIOP (§5: "the request num … is different from the
//! standard CORBA request id which applies to a physical connection"). The
//! GIOP `request_id` we emit is therefore just the low 32 bits of the
//! request number — enough for a conventional ORB on the receiving side to
//! match replies, while FTMP's pair provides the group-wide identity.

use ftmp_cdr::ByteOrder;
use ftmp_core::RequestNum;
use ftmp_giop::{GiopMessage, ReplyHeader, ReplyStatus, RequestHeader};

/// Build a GIOP Request for `operation` on the object named `object_key`.
pub fn make_request(
    request_num: RequestNum,
    object_key: &[u8],
    operation: &str,
    args: &[u8],
    response_expected: bool,
) -> Vec<u8> {
    GiopMessage::Request {
        header: RequestHeader {
            service_context: vec![],
            request_id: request_num.0 as u32,
            response_expected,
            object_key: object_key.to_vec(),
            operation: operation.to_string(),
            requesting_principal: vec![],
        },
        body: args.to_vec(),
    }
    .encode(ByteOrder::native())
}

/// Build a GIOP Reply carrying a successful result.
pub fn make_reply(request_num: RequestNum, result: &[u8]) -> Vec<u8> {
    GiopMessage::Reply {
        header: ReplyHeader {
            service_context: vec![],
            request_id: request_num.0 as u32,
            reply_status: ReplyStatus::NoException,
        },
        body: result.to_vec(),
    }
    .encode(ByteOrder::native())
}

/// Build a GIOP Reply carrying a user exception (repository id string as the
/// body prefix, per the CORBA exception marshalling convention).
pub fn make_exception_reply(request_num: RequestNum, repo_id: &str) -> Vec<u8> {
    let mut w = ftmp_cdr::CdrWriter::new(ByteOrder::native());
    w.write_string(repo_id);
    GiopMessage::Reply {
        header: ReplyHeader {
            service_context: vec![],
            request_id: request_num.0 as u32,
            reply_status: ReplyStatus::UserException,
        },
        body: w.into_bytes(),
    }
    .encode(ByteOrder::native())
}

/// A parsed inbound GIOP message, reduced to what the ORB endpoint needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inbound {
    /// A method invocation.
    Request {
        /// Target object key.
        object_key: Vec<u8>,
        /// Operation name.
        operation: String,
        /// CDR-encoded arguments.
        args: Vec<u8>,
        /// Whether a Reply must be produced.
        response_expected: bool,
    },
    /// A successful result.
    Reply {
        /// CDR-encoded result.
        result: Vec<u8>,
    },
    /// A user or system exception.
    ExceptionReply {
        /// Exception repository id (best-effort decode).
        repo_id: String,
    },
    /// An object-location query.
    LocateRequest {
        /// The key being located.
        object_key: Vec<u8>,
    },
    /// An object-location answer.
    LocateReply {
        /// Whether the object is served here.
        status: ftmp_giop::LocateStatus,
    },
    /// Cancellation of an outstanding request.
    CancelRequest,
    /// Any other GIOP message type (CloseConnection, MessageError, …).
    Other(ftmp_giop::MsgType),
}

/// Build a GIOP LocateRequest.
pub fn make_locate_request(request_num: RequestNum, object_key: &[u8]) -> Vec<u8> {
    GiopMessage::LocateRequest(ftmp_giop::LocateRequestHeader {
        request_id: request_num.0 as u32,
        object_key: object_key.to_vec(),
    })
    .encode(ByteOrder::native())
}

/// Build a GIOP LocateReply.
pub fn make_locate_reply(request_num: RequestNum, status: ftmp_giop::LocateStatus) -> Vec<u8> {
    GiopMessage::LocateReply {
        header: ftmp_giop::LocateReplyHeader {
            request_id: request_num.0 as u32,
            locate_status: status,
        },
        body: vec![],
    }
    .encode(ByteOrder::native())
}

/// Build a GIOP CancelRequest.
pub fn make_cancel(request_num: RequestNum) -> Vec<u8> {
    GiopMessage::CancelRequest {
        request_id: request_num.0 as u32,
    }
    .encode(ByteOrder::native())
}

/// Build a GIOP CloseConnection.
pub fn make_close() -> Vec<u8> {
    GiopMessage::CloseConnection.encode(ByteOrder::native())
}

/// Parse an inbound GIOP byte stream.
pub fn parse(bytes: &[u8]) -> Result<Inbound, ftmp_giop::GiopError> {
    reduce(GiopMessage::decode(bytes)?)
}

/// Reduce an already-decoded GIOP message (e.g. from fragment reassembly)
/// to the ORB's inbound view.
pub fn reduce(msg: GiopMessage) -> Result<Inbound, ftmp_giop::GiopError> {
    Ok(match msg {
        GiopMessage::Request { header, body } => Inbound::Request {
            object_key: header.object_key,
            operation: header.operation,
            args: body,
            response_expected: header.response_expected,
        },
        GiopMessage::Reply { header, body } => match header.reply_status {
            ReplyStatus::NoException => Inbound::Reply { result: body },
            _ => {
                let repo_id = ftmp_cdr::from_bytes::<String>(&body, ByteOrder::native())
                    .unwrap_or_else(|_| "IDL:CORBA/UNKNOWN:1.0".to_string());
                Inbound::ExceptionReply { repo_id }
            }
        },
        GiopMessage::LocateRequest(h) => Inbound::LocateRequest {
            object_key: h.object_key,
        },
        GiopMessage::LocateReply { header, .. } => Inbound::LocateReply {
            status: header.locate_status,
        },
        GiopMessage::CancelRequest { .. } => Inbound::CancelRequest,
        other => Inbound::Other(other.msg_type()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let bytes = make_request(RequestNum(9), b"bank/1", "deposit", &[1, 2, 3], true);
        match parse(&bytes).unwrap() {
            Inbound::Request {
                object_key,
                operation,
                args,
                response_expected,
            } => {
                assert_eq!(object_key, b"bank/1");
                assert_eq!(operation, "deposit");
                assert_eq!(args, vec![1, 2, 3]);
                assert!(response_expected);
            }
            other => panic!("wrong parse {other:?}"),
        }
    }

    #[test]
    fn reply_round_trip() {
        let bytes = make_reply(RequestNum(9), &[7, 7]);
        assert_eq!(
            parse(&bytes).unwrap(),
            Inbound::Reply { result: vec![7, 7] }
        );
    }

    #[test]
    fn exception_reply_round_trip() {
        let bytes = make_exception_reply(RequestNum(9), "IDL:Bank/InsufficientFunds:1.0");
        match parse(&bytes).unwrap() {
            Inbound::ExceptionReply { repo_id } => {
                assert_eq!(repo_id, "IDL:Bank/InsufficientFunds:1.0");
            }
            other => panic!("wrong parse {other:?}"),
        }
    }

    #[test]
    fn other_messages_pass_through() {
        let bytes = GiopMessage::CloseConnection.encode(ByteOrder::Big);
        assert_eq!(
            parse(&bytes).unwrap(),
            Inbound::Other(ftmp_giop::MsgType::CloseConnection)
        );
    }

    #[test]
    fn corrupt_input_is_an_error_not_a_panic() {
        assert!(parse(&[1, 2, 3]).is_err());
    }
}
