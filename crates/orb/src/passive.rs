//! Warm-passive (primary/backup) replication over FTMP.
//!
//! The paper's object groups use active replication (every replica executes
//! every request); its successor line (Eternal, FT-CORBA) added *passive*
//! styles, where one primary executes and the backups apply state updates.
//! Over a totally-ordered multicast the passive style is simple and
//! deterministic:
//!
//! * every replica sees the same ordered Request stream;
//! * the replica whose processor id is the smallest among the object
//!   group's *current processor membership* is the primary — a pure
//!   function of the membership, so a fault report repoints the primary at
//!   every survivor simultaneously, with no election protocol;
//! * the primary executes the request, multicasts the Reply to the client
//!   group, and multicasts a `_state` pseudo-request carrying its snapshot
//!   on the same connection;
//! * backups skip execution and apply `_state` bodies instead.
//!
//! Non-determinism in the servant (timers, randomness) is therefore
//! confined to the primary — the classic reason to pay the state-transfer
//! bytes instead of re-executing (experiment E10 prices the trade).
//!
//! Failover: when a fault report removes the primary, the next-smallest
//! survivor becomes primary at the same delivered membership change.
//! Backups track the requests delivered since the last applied state
//! update; the new primary replays exactly that suffix against the inherited
//! state, emits the missing replies, and ships fresh state. If the old
//! primary's reply did get out before the crash, the client-side duplicate
//! detector absorbs the second copy (deterministic servants make the two
//! replies identical) — at-least-once at the servant, exactly-once toward
//! the client.

use crate::endpoint::OrbEndpoint;
use ftmp_core::{Delivery, ObjectGroupId, ProcessorId};

/// Replication style for a hosted object group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationStyle {
    /// Every replica executes every request (the paper's model).
    #[default]
    Active,
    /// Only the primary executes; backups apply shipped state.
    WarmPassive,
}

/// The reserved pseudo-operation carrying primary → backup state.
pub const STATE_OP: &str = "_ftmp_state_update";

/// Decide the primary for an object group: the smallest live processor id
/// hosting it. Deterministic in the membership, so every survivor repoints
/// at the same instant (the delivered membership change).
pub fn primary_of(hosting: &[ProcessorId]) -> Option<ProcessorId> {
    hosting.iter().copied().min()
}

impl OrbEndpoint {
    /// Switch a hosted object group to warm-passive replication. `hosting`
    /// is the set of processors hosting replicas (kept current by
    /// [`note_membership`]); `me` identifies the local processor.
    ///
    /// [`note_membership`]: OrbEndpoint::note_membership
    pub fn set_warm_passive(
        &mut self,
        og: ObjectGroupId,
        me: ProcessorId,
        hosting: Vec<ProcessorId>,
    ) {
        self.passive.insert(
            og,
            PassiveState {
                me,
                hosting,
                pending: Vec::new(),
            },
        );
    }

    /// Update the hosting set after a membership change (fault report or
    /// voluntary removal). If the change makes this endpoint the primary,
    /// it replays the requests delivered since the last applied state
    /// update, emits their replies and ships fresh state — warm-passive
    /// failover.
    pub fn note_membership(&mut self, og: ObjectGroupId, hosting: Vec<ProcessorId>) {
        let became_primary = {
            let Some(st) = self.passive.get_mut(&og) else {
                return;
            };
            let was = primary_of(&st.hosting) == Some(st.me);
            st.hosting = hosting;
            !was && primary_of(&st.hosting) == Some(st.me)
        };
        if became_primary {
            self.replay_pending(og);
        }
    }

    fn replay_pending(&mut self, og: ObjectGroupId) {
        let pending = match self.passive.get_mut(&og) {
            Some(st) => std::mem::take(&mut st.pending),
            None => return,
        };
        let mut shipped_on = None;
        for p in pending {
            if !self.shards.first_execution(p.conn, p.request_num) {
                continue;
            }
            let Some(servant) = self.servants.get_mut(&og) else {
                continue;
            };
            let reply = match servant.invoke(&p.operation, &p.args) {
                Ok(result) => crate::giop_map::make_reply(p.request_num, &result),
                Err(repo_id) => crate::giop_map::make_exception_reply(p.request_num, &repo_id),
            };
            if p.response_expected {
                self.push_state_outbound(p.conn, p.request_num, reply);
            }
            shipped_on = Some(p.conn);
        }
        if let Some(conn) = shipped_on {
            self.ship_state(og, conn);
        }
    }

    /// Is this endpoint currently the primary for `og`?
    pub fn is_primary(&self, og: ObjectGroupId) -> bool {
        match self.passive.get(&og) {
            None => true, // active replication: everyone "is the primary"
            Some(st) => primary_of(&st.hosting) == Some(st.me),
        }
    }

    /// Apply a processor-group membership change to every warm-passive
    /// hosting set (drop departed processors). Called by [`crate::OrbNode`]
    /// on MembershipChange events; failover replay triggers here.
    pub fn note_membership_all(&mut self, members: &[ProcessorId]) {
        let ogs: Vec<ObjectGroupId> = self.passive.keys().copied().collect();
        for og in ogs {
            let hosting = {
                let st = self.passive.get(&og).expect("listed");
                st.hosting
                    .iter()
                    .copied()
                    .filter(|p| members.contains(p))
                    .collect::<Vec<_>>()
            };
            self.note_membership(og, hosting);
        }
    }

    /// Replication style of a hosted group.
    pub fn style_of(&self, og: ObjectGroupId) -> ReplicationStyle {
        if self.passive.contains_key(&og) {
            ReplicationStyle::WarmPassive
        } else {
            ReplicationStyle::Active
        }
    }

    /// Passive-mode hook, called by `on_delivery` for Requests addressed to
    /// a warm-passive group. Returns `true` when the caller should proceed
    /// with normal (execute + reply) handling — i.e. we are the primary —
    /// and `false` when the request must be skipped (we are a backup).
    /// State updates are applied here for backups.
    pub(crate) fn passive_gate(
        &mut self,
        og: ObjectGroupId,
        operation: &str,
        args: &[u8],
        d: &Delivery,
        response_expected: bool,
    ) -> bool {
        let me = match self.passive.get(&og) {
            None => return true, // active group
            Some(st) => st.me,
        };
        if operation == STATE_OP {
            // A state update: backups apply it and clear the pending suffix
            // it covers (it was produced after those executions, and the
            // total order preserves that). The producing primary skips it.
            if d.source != me {
                if let Some(servant) = self.servants.get_mut(&og) {
                    servant.restore(args);
                }
                // The shipped state reflects every request the primary
                // executed before producing it; mark them executed so a
                // later failover does not replay them.
                if let Some(st) = self.passive.get_mut(&og) {
                    let pending = std::mem::take(&mut st.pending);
                    for p in pending {
                        self.shards.first_execution(p.conn, p.request_num);
                    }
                }
            }
            return false; // never execute the pseudo-op
        }
        let st = self.passive.get_mut(&og).expect("checked above");
        let primary = primary_of(&st.hosting) == Some(st.me);
        if !primary {
            // Backup: remember the request for potential failover replay.
            st.pending.push(PendingReq {
                conn: d.conn,
                request_num: d.request_num,
                operation: operation.to_string(),
                args: args.to_vec(),
                response_expected,
            });
        }
        primary
    }

    /// After the primary executes a request, ship the new state to the
    /// backups (queued like any outbound GIOP message, so it rides the same
    /// total order as the reply).
    pub(crate) fn ship_state(&mut self, og: ObjectGroupId, conn: ftmp_core::ConnectionId) {
        if !self.passive.contains_key(&og) || !self.is_primary(og) {
            return;
        }
        let Some(servant) = self.servants.get(&og) else {
            return;
        };
        let snapshot = servant.snapshot();
        // Address the pseudo-request by the group's own object key so it
        // routes through the same dispatch as real requests at the backups.
        let Some(key) = self.object_key_of(og) else {
            return;
        };
        let num = self.shards.alloc_request(conn);
        let giop = crate::giop_map::make_request(num, &key, STATE_OP, &snapshot, false);
        self.push_state_outbound(conn, num, giop);
    }
}

/// Per-object-group passive-replication state.
#[derive(Debug, Clone)]
pub(crate) struct PassiveState {
    pub(crate) me: ProcessorId,
    pub(crate) hosting: Vec<ProcessorId>,
    /// Requests delivered since the last applied state update (replayed on
    /// failover).
    pub(crate) pending: Vec<PendingReq>,
}

/// A backup's record of a delivered-but-not-executed request.
#[derive(Debug, Clone)]
pub(crate) struct PendingReq {
    pub(crate) conn: ftmp_core::ConnectionId,
    pub(crate) request_num: ftmp_core::RequestNum,
    pub(crate) operation: String,
    pub(crate) args: Vec<u8>,
    pub(crate) response_expected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_is_min_id() {
        assert_eq!(
            primary_of(&[ProcessorId(5), ProcessorId(2), ProcessorId(9)]),
            Some(ProcessorId(2))
        );
        assert_eq!(primary_of(&[]), None);
    }

    #[test]
    fn failover_repoints_deterministically() {
        let mut hosting = vec![ProcessorId(2), ProcessorId(3), ProcessorId(4)];
        assert_eq!(primary_of(&hosting), Some(ProcessorId(2)));
        hosting.retain(|p| *p != ProcessorId(2)); // primary convicted
        assert_eq!(primary_of(&hosting), Some(ProcessorId(3)));
    }
}
