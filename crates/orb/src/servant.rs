//! Application object interface and two reference servants.

use ftmp_cdr::{ByteOrder, CdrReader, CdrWriter};

/// A replicated application object.
///
/// Replicas of a servant form an object group. FTMP delivers the same
/// operations in the same order to every replica, so a deterministic
/// `invoke` keeps their states identical (active replication). `snapshot` /
/// `restore` support activating a new or backup replica (the fault
/// tolerance infrastructure's job after a fault report, §7.2).
pub trait Servant: Send {
    /// Execute one operation. `args` is the CDR-encoded GIOP Request body;
    /// the return value is the CDR-encoded Reply body. `Err` carries a
    /// CORBA user exception (its repository id).
    fn invoke(&mut self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String>;

    /// Serialize the full object state.
    fn snapshot(&self) -> Vec<u8>;

    /// Replace the object state (new replica activation).
    fn restore(&mut self, state: &[u8]);
}

/// A replicated bank account — the classic replication demo, used by the
/// `replicated_bank` example and the E7/E8 experiments.
///
/// Operations (arguments and results are CDR `long long` / `unsigned long
/// long` values, big-endian on the wire as the sender chooses):
/// `deposit(amount) -> balance`, `withdraw(amount) -> balance` (raises
/// `InsufficientFunds`), `balance() -> balance`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BankAccount {
    balance: i64,
    /// Operations applied (replica-consistency diagnostics).
    pub ops_applied: u64,
}

impl BankAccount {
    /// A fresh account with the given opening balance.
    pub fn with_balance(balance: i64) -> Self {
        BankAccount {
            balance,
            ops_applied: 0,
        }
    }

    /// Current balance.
    pub fn balance(&self) -> i64 {
        self.balance
    }

    fn encode_balance(&self) -> Vec<u8> {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_i64(self.balance);
        w.into_bytes()
    }
}

fn read_i64(args: &[u8]) -> Result<i64, String> {
    let mut r = CdrReader::new(args, ByteOrder::Big);
    r.read_i64().map_err(|e| format!("IDL:BadParam:1.0 {e}"))
}

impl Servant for BankAccount {
    fn invoke(&mut self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        match operation {
            "deposit" => {
                let amount = read_i64(args)?;
                self.balance += amount;
                self.ops_applied += 1;
                Ok(self.encode_balance())
            }
            "withdraw" => {
                let amount = read_i64(args)?;
                if amount > self.balance {
                    return Err("IDL:Bank/InsufficientFunds:1.0".into());
                }
                self.balance -= amount;
                self.ops_applied += 1;
                Ok(self.encode_balance())
            }
            "balance" => {
                self.ops_applied += 1;
                Ok(self.encode_balance())
            }
            other => Err(format!("IDL:CORBA/BAD_OPERATION:1.0 {other}")),
        }
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_i64(self.balance);
        w.write_u64(self.ops_applied);
        w.into_bytes()
    }

    fn restore(&mut self, state: &[u8]) {
        let mut r = CdrReader::new(state, ByteOrder::Big);
        self.balance = r.read_i64().unwrap_or(0);
        self.ops_applied = r.read_u64().unwrap_or(0);
    }
}

/// A trivial counter servant (quickstart example, throughput workloads).
/// Operations: `add(delta) -> value`, `get() -> value`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counter {
    value: i64,
}

impl Counter {
    /// Current value.
    pub fn value(&self) -> i64 {
        self.value
    }
}

impl Servant for Counter {
    fn invoke(&mut self, operation: &str, args: &[u8]) -> Result<Vec<u8>, String> {
        match operation {
            "add" => {
                self.value += read_i64(args)?;
            }
            "get" => {}
            other => return Err(format!("IDL:CORBA/BAD_OPERATION:1.0 {other}")),
        }
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_i64(self.value);
        Ok(w.into_bytes())
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_i64(self.value);
        w.into_bytes()
    }

    fn restore(&mut self, state: &[u8]) {
        let mut r = CdrReader::new(state, ByteOrder::Big);
        self.value = r.read_i64().unwrap_or(0);
    }
}

/// Encode a single `long long` argument (helper for examples and tests).
pub fn encode_i64_arg(v: i64) -> Vec<u8> {
    let mut w = CdrWriter::new(ByteOrder::Big);
    w.write_i64(v);
    w.into_bytes()
}

/// Decode a single `long long` result (helper for examples and tests).
pub fn decode_i64_result(bytes: &[u8]) -> Option<i64> {
    let mut r = CdrReader::new(bytes, ByteOrder::Big);
    r.read_i64().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_account_operations() {
        let mut acct = BankAccount::with_balance(100);
        let r = acct.invoke("deposit", &encode_i64_arg(50)).unwrap();
        assert_eq!(decode_i64_result(&r), Some(150));
        let r = acct.invoke("withdraw", &encode_i64_arg(30)).unwrap();
        assert_eq!(decode_i64_result(&r), Some(120));
        let e = acct.invoke("withdraw", &encode_i64_arg(1_000)).unwrap_err();
        assert!(e.contains("InsufficientFunds"));
        assert_eq!(acct.balance(), 120);
        assert_eq!(acct.ops_applied, 2, "failed ops do not mutate state");
    }

    #[test]
    fn bank_account_snapshot_restore() {
        let mut a = BankAccount::with_balance(7);
        a.invoke("deposit", &encode_i64_arg(3)).unwrap();
        let snap = a.snapshot();
        let mut b = BankAccount::default();
        b.restore(&snap);
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic_replicas_stay_identical() {
        let mut a = BankAccount::with_balance(0);
        let mut b = BankAccount::with_balance(0);
        let ops = [
            ("deposit", 10),
            ("deposit", 5),
            ("withdraw", 7),
            ("balance", 0),
        ];
        for (op, v) in ops {
            let ra = a.invoke(op, &encode_i64_arg(v));
            let rb = b.invoke(op, &encode_i64_arg(v));
            assert_eq!(ra, rb);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn bad_operation_raises() {
        let mut c = Counter::default();
        assert!(c.invoke("nope", &[]).is_err());
        c.invoke("add", &encode_i64_arg(4)).unwrap();
        let r = c.invoke("get", &[]).unwrap();
        assert_eq!(decode_i64_result(&r), Some(4));
    }

    #[test]
    fn counter_snapshot_restore() {
        let mut a = Counter::default();
        a.invoke("add", &encode_i64_arg(42)).unwrap();
        let mut b = Counter::default();
        b.restore(&a.snapshot());
        assert_eq!(b.value(), 42);
    }

    #[test]
    fn malformed_args_rejected_without_state_change() {
        let mut acct = BankAccount::with_balance(5);
        assert!(acct.invoke("deposit", &[1, 2]).is_err());
        assert_eq!(acct.balance(), 5);
        assert_eq!(acct.ops_applied, 0);
    }
}
