//! One processor's ORB: active replication over FTMP deliveries.

use crate::giop_map::{self, Inbound};
use crate::log::{LogEntry, LogKind, MessageLog};
use crate::servant::Servant;
use crate::shard::ShardSet;
use bytes::Bytes;
use ftmp_core::{ConnectionId, Delivery, ObjectGroupId, ProcessorId, RequestNum};
use ftmp_giop::{FragmentAssembler, Fragmenter};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A GIOP message the endpoint wants multicast on a connection; the host
/// forwards it to [`ftmp_core::Processor::multicast_request`].
#[derive(Debug, Clone)]
pub struct OutboundMsg {
    /// The connection to send on.
    pub conn: ConnectionId,
    /// The request number (same for the request and its reply).
    pub request_num: RequestNum,
    /// Encoded GIOP message.
    pub giop: Bytes,
}

/// The outcome of an invocation, surfaced to the application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvocationResult {
    /// The operation returned normally (CDR-encoded result).
    Ok(Vec<u8>),
    /// The operation raised an exception (repository id).
    Exception(String),
    /// A LocateRequest was answered.
    Located {
        /// True when the server group serves the object.
        here: bool,
    },
}

/// A completed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The connection the invocation ran on.
    pub conn: ConnectionId,
    /// Its request number.
    pub request_num: RequestNum,
    /// The outcome.
    pub result: InvocationResult,
}

/// One processor's ORB endpoint.
///
/// Hosts zero or more servant replicas (server role) and issues invocations
/// on behalf of local replicas of client object groups (client role). All
/// replicas of a client group allocate identical request numbers because
/// they run the same deterministic application against the same ordered
/// delivery stream (§4: "all of the client replicas use the same request
/// number for a given request").
pub struct OrbEndpoint {
    pub(crate) servants: BTreeMap<ObjectGroupId, Box<dyn Servant>>,
    /// Object keys by which each hosted servant is addressed.
    object_keys: BTreeMap<Vec<u8>, ObjectGroupId>,
    /// Connections on which this endpoint acts as a client.
    client_conns: BTreeSet<ConnectionId>,
    /// All per-connection engine state — duplicate suppression, request
    /// numbering, request/reply matching, cancellation/close marks and
    /// latency histograms — split across hash-indexed shards so every
    /// lookup touches exactly one shard. Ordered semantics are unchanged:
    /// CancelRequests and CloseConnections ride the same total order as
    /// Requests, so every replica applies them at the same position.
    pub(crate) shards: ShardSet,
    /// The delivery log (replay, request/reply matching).
    pub log: MessageLog,
    outbound: VecDeque<OutboundMsg>,
    completions: VecDeque<Completion>,
    /// When set, outbound GIOP messages larger than this are split into
    /// GIOP 1.1 fragments, each travelling as its own FTMP Regular message.
    fragmenter: Option<Fragmenter>,
    /// Reassembly of inbound fragments, keyed per (connection, sender) —
    /// FTMP's source order guarantees one in-flight message per key.
    assembler: FragmentAssembler<(ConnectionId, ProcessorId)>,
    /// Warm-passive replication state per hosted object group (absent =
    /// active replication, the paper's model).
    pub(crate) passive: BTreeMap<ObjectGroupId, crate::passive::PassiveState>,
}

impl Default for OrbEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl OrbEndpoint {
    /// An empty endpoint.
    pub fn new() -> Self {
        OrbEndpoint {
            servants: BTreeMap::new(),
            object_keys: BTreeMap::new(),
            client_conns: BTreeSet::new(),
            shards: ShardSet::new(),
            log: MessageLog::default(),
            outbound: VecDeque::new(),
            completions: VecDeque::new(),
            fragmenter: None,
            assembler: FragmentAssembler::new(16 << 20),
            passive: BTreeMap::new(),
        }
    }

    /// Enable GIOP fragmentation for outbound messages larger than
    /// `max_datagram` bytes (§3.1 lists Fragment among the message types
    /// FTMP carries; each fragment rides its own Regular message and the
    /// total order keeps per-sender fragments contiguous-in-source).
    pub fn enable_fragmentation(&mut self, max_datagram: usize) {
        self.fragmenter = Some(Fragmenter::new(max_datagram));
    }

    /// Host a servant replica for `og`, addressable by `object_key`.
    pub fn host_replica(
        &mut self,
        og: ObjectGroupId,
        object_key: impl Into<Vec<u8>>,
        servant: Box<dyn Servant>,
    ) {
        self.servants.insert(og, servant);
        self.object_keys.insert(object_key.into(), og);
    }

    /// Declare this endpoint a client on `conn`.
    pub fn register_client(&mut self, conn: ConnectionId) {
        self.client_conns.insert(conn);
    }

    /// Access a hosted servant (state inspection in tests and examples).
    pub fn servant(&self, og: ObjectGroupId) -> Option<&dyn Servant> {
        self.servants.get(&og).map(|b| b.as_ref())
    }

    /// Mutable access to a hosted servant (state transfer on activation).
    pub fn servant_mut(&mut self, og: ObjectGroupId) -> Option<&mut (dyn Servant + '_)> {
        match self.servants.get_mut(&og) {
            Some(b) => Some(b.as_mut()),
            None => None,
        }
    }

    /// Duplicate-suppression counters: (requests suppressed, replies
    /// suppressed) — experiment E7.
    pub fn suppression_counts(&self) -> (u64, u64) {
        self.shards.suppression_counts()
    }

    /// Duplicate-detector residue numbers folded into watermarks to stay
    /// within the per-connection memory bound (0 until a connection's
    /// sparse residue overflows [`crate::dup::DEFAULT_RESIDUE_CAP`]).
    pub fn dup_evictions(&self) -> u64 {
        self.shards.dup_evictions()
    }

    /// The sharded per-connection state (telemetry and tests).
    pub fn shards(&self) -> &ShardSet {
        &self.shards
    }

    /// Outstanding invocations.
    pub fn pending_count(&self) -> usize {
        self.shards.pending_count()
    }

    /// Start an invocation on `conn` against the object named `object_key`.
    /// Returns the request number identifying the eventual [`Completion`].
    pub fn invoke(
        &mut self,
        conn: ConnectionId,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
    ) -> RequestNum {
        let num = self.shards.alloc_request(conn);
        let giop = giop_map::make_request(num, object_key, operation, args, true);
        self.shards.note_pending(conn, num);
        self.push_outbound(conn, num, giop);
        num
    }

    /// Activate a new or backup replica (§7.2: after a fault report "the
    /// fault tolerance infrastructure … activates new or backup replicas
    /// for the object groups"). The fresh servant is restored from a donor
    /// replica's `snapshot` and brought forward by deterministically
    /// replaying the donor's logged requests delivered after the snapshot
    /// point (§4's log replay). Replayed requests are marked executed so
    /// stray duplicates cannot re-run them; no replies are emitted during
    /// replay (the originals were answered by the donors).
    pub fn activate_replica(
        &mut self,
        og: ObjectGroupId,
        object_key: impl Into<Vec<u8>>,
        mut servant: Box<dyn Servant>,
        snapshot: &[u8],
        conn: ConnectionId,
        replay: &[crate::log::LogEntry],
    ) {
        servant.restore(snapshot);
        for e in replay {
            if e.kind != crate::log::LogKind::Request {
                continue;
            }
            if !self.shards.first_execution(conn, e.request_num) {
                continue; // already applied (overlapping replay)
            }
            if let Ok(Inbound::Request {
                operation, args, ..
            }) = giop_map::parse(&e.giop)
            {
                let _ = servant.invoke(&operation, &args);
            }
        }
        self.host_replica(og, object_key, servant);
    }

    /// Delta variant of [`activate_replica`] for crash→restart→rejoin
    /// (DESIGN.md §12). The restarted replica replays its **own** durable
    /// log first — every request it had delivered and executed before the
    /// crash — then only the donor's *suffix* past the persisted horizon,
    /// not a full snapshot. Both passes run through the same exactly-once
    /// gate, so overlap at the horizon is harmless: a request present in
    /// both streams executes once. Reply entries warm the reply-side
    /// duplicate detector without invoking anything, and every accepted
    /// entry is re-appended to the in-memory replay log so this replica
    /// can itself donate later.
    ///
    /// [`activate_replica`]: OrbEndpoint::activate_replica
    pub fn activate_replica_delta(
        &mut self,
        og: ObjectGroupId,
        object_key: impl Into<Vec<u8>>,
        mut servant: Box<dyn Servant>,
        conn: ConnectionId,
        own: &[crate::log::LogEntry],
        donor_delta: &[crate::log::LogEntry],
    ) {
        for e in own.iter().chain(donor_delta) {
            match e.kind {
                crate::log::LogKind::Request => {
                    if !self.shards.first_execution(conn, e.request_num) {
                        continue; // overlap at the horizon: already applied
                    }
                    if let Ok(Inbound::Request {
                        operation, args, ..
                    }) = giop_map::parse(&e.giop)
                    {
                        let _ = servant.invoke(&operation, &args);
                    }
                    self.log.append(conn, e.clone());
                }
                crate::log::LogKind::Reply => {
                    if self.shards.first_reply(conn, e.request_num) {
                        self.log.append(conn, e.clone());
                    }
                }
            }
        }
        self.host_replica(og, object_key, servant);
    }

    /// Issue a LocateRequest for `object_key` (CORBA's "where does this
    /// object live?"); completes with [`InvocationResult::Located`].
    pub fn locate(&mut self, conn: ConnectionId, object_key: &[u8]) -> RequestNum {
        let num = self.shards.alloc_request(conn);
        let giop = giop_map::make_locate_request(num, object_key);
        self.shards.note_pending(conn, num);
        self.push_outbound(conn, num, giop);
        num
    }

    /// Initiate an orderly shutdown of `conn` (GIOP CloseConnection). The
    /// close is totally ordered like everything else: requests ordered
    /// before it are served everywhere, requests ordered after it are
    /// dropped everywhere.
    pub fn close(&mut self, conn: ConnectionId) {
        let num = self.shards.alloc_request(conn);
        self.push_outbound(conn, num, giop_map::make_close());
    }

    /// Has an ordered CloseConnection been delivered for `conn`?
    pub fn is_closed(&self, conn: ConnectionId) -> bool {
        self.shards.is_closed(conn)
    }

    /// Cancel an outstanding request. The CancelRequest travels in the same
    /// total order as the Request itself, so either every server replica
    /// sees the cancel first (nobody executes) or none does (everybody
    /// executes) — never a split.
    pub fn cancel(&mut self, conn: ConnectionId, num: RequestNum) {
        self.shards.remove_pending(conn, num);
        let giop = giop_map::make_cancel(num);
        self.push_outbound(conn, num, giop);
    }

    /// Reverse lookup: the object key a hosted group is addressed by.
    pub(crate) fn object_key_of(&self, og: ObjectGroupId) -> Option<Vec<u8>> {
        self.object_keys
            .iter()
            .find(|(_, o)| **o == og)
            .map(|(k, _)| k.clone())
    }

    /// Crate-internal alias of [`push_outbound`] for the passive module.
    ///
    /// [`push_outbound`]: OrbEndpoint::push_outbound
    pub(crate) fn push_state_outbound(
        &mut self,
        conn: ConnectionId,
        num: RequestNum,
        giop: Vec<u8>,
    ) {
        self.push_outbound(conn, num, giop);
    }

    /// Queue a GIOP message for multicast, fragmenting when enabled and
    /// needed.
    fn push_outbound(&mut self, conn: ConnectionId, num: RequestNum, giop: Vec<u8>) {
        if let Some(f) = &self.fragmenter {
            if giop.len() > f.max_datagram() {
                let parts = f.split(&giop).expect("encoded GIOP always splits");
                for p in parts {
                    self.outbound.push_back(OutboundMsg {
                        conn,
                        request_num: num,
                        giop: Bytes::from(p),
                    });
                }
                return;
            }
        }
        self.outbound.push_back(OutboundMsg {
            conn,
            request_num: num,
            giop: Bytes::from(giop),
        });
    }

    /// Feed one ordered FTMP delivery. Requests execute on hosted servants
    /// (each exactly once, however many client replicas sent them); replies
    /// complete pending invocations (each exactly once). Fragmented GIOP
    /// messages are reassembled per (connection, sender) before processing.
    pub fn on_delivery(&mut self, d: &Delivery) {
        let (parsed, log_bytes) = match self.assembler.push((d.conn, d.source), &d.giop) {
            Ok(Some(msg)) => {
                // When the completing datagram was a Fragment, the replay
                // log must hold the reassembled message, not the tail piece.
                let reassembled =
                    d.giop.len() > 7 && d.giop[7] == ftmp_giop::MsgType::Fragment as u8;
                let log_bytes = if reassembled {
                    Bytes::from(msg.encode(ftmp_cdr::ByteOrder::native()))
                } else {
                    d.giop.clone()
                };
                match giop_map::reduce(msg) {
                    Ok(p) => (p, log_bytes),
                    Err(_) => return,
                }
            }
            Ok(None) => return, // more fragments to come
            Err(_) => return,   // not GIOP / orphan fragment; ignore
        };
        match parsed {
            Inbound::Request {
                object_key,
                operation,
                args,
                response_expected,
            } => {
                self.log.append(
                    d.conn,
                    LogEntry {
                        request_num: d.request_num,
                        kind: LogKind::Request,
                        source: d.source,
                        ts: d.ts,
                        giop: log_bytes,
                    },
                );
                // Deliveries reach both groups (§4); only the server group's
                // replicas execute, and only the first copy does.
                let Some(og) = self.object_keys.get(object_key.as_slice()).copied() else {
                    return;
                };
                if og != d.conn.server {
                    return;
                }
                if self.shards.is_closed(d.conn) {
                    return; // the connection closed at an earlier position
                }
                if self.shards.is_cancelled(d.conn, d.request_num) {
                    return; // cancelled at an earlier total-order position
                }
                if !self.passive_gate(og, &operation, &args, d, response_expected) {
                    return; // backup in a warm-passive group, or a state op
                }
                if !self.shards.first_execution(d.conn, d.request_num) {
                    return;
                }
                let Some(servant) = self.servants.get_mut(&og) else {
                    return;
                };
                let reply = match servant.invoke(&operation, &args) {
                    Ok(result) => giop_map::make_reply(d.request_num, &result),
                    Err(repo_id) => giop_map::make_exception_reply(d.request_num, &repo_id),
                };
                if response_expected {
                    self.push_outbound(d.conn, d.request_num, reply);
                }
                self.ship_state(og, d.conn);
            }
            Inbound::Reply { result } => {
                self.complete(d, log_bytes, InvocationResult::Ok(result));
            }
            Inbound::ExceptionReply { repo_id } => {
                self.complete(d, log_bytes, InvocationResult::Exception(repo_id));
            }
            Inbound::LocateRequest { object_key } => {
                // Only the located object group's replicas answer; the
                // answering replica is deduped like a Request execution.
                let here = self
                    .object_keys
                    .get(object_key.as_slice())
                    .is_some_and(|og| *og == d.conn.server);
                if self.servants.contains_key(&d.conn.server)
                    && self.shards.first_execution(d.conn, d.request_num)
                {
                    let status = if here {
                        ftmp_giop::LocateStatus::ObjectHere
                    } else {
                        ftmp_giop::LocateStatus::UnknownObject
                    };
                    let reply = giop_map::make_locate_reply(d.request_num, status);
                    self.push_outbound(d.conn, d.request_num, reply);
                }
            }
            Inbound::LocateReply { status } => {
                let here = status == ftmp_giop::LocateStatus::ObjectHere;
                self.complete(d, log_bytes, InvocationResult::Located { here });
            }
            Inbound::CancelRequest => {
                // Deterministic: ordered like everything else.
                self.shards.note_cancelled(d.conn, d.request_num);
                self.shards.remove_pending(d.conn, d.request_num);
            }
            Inbound::Other(ftmp_giop::MsgType::CloseConnection) => {
                self.shards.note_closed(d.conn);
                // Outstanding invocations on the closed connection will
                // never complete; surface that.
                self.shards.clear_conn_pending(d.conn);
            }
            Inbound::Other(_) => {}
        }
    }

    fn complete(&mut self, d: &Delivery, log_bytes: Bytes, result: InvocationResult) {
        self.log.append(
            d.conn,
            LogEntry {
                request_num: d.request_num,
                kind: LogKind::Reply,
                source: d.source,
                ts: d.ts,
                giop: log_bytes,
            },
        );
        if !self.client_conns.contains(&d.conn) {
            return;
        }
        if !self.shards.first_reply(d.conn, d.request_num) {
            return; // another server replica's copy of the same reply
        }
        if self.shards.remove_pending(d.conn, d.request_num) {
            self.completions.push_back(Completion {
                conn: d.conn,
                request_num: d.request_num,
                result,
            });
        }
    }

    /// Drain GIOP messages to multicast.
    pub fn drain_outbound(&mut self) -> Vec<OutboundMsg> {
        self.outbound.drain(..).collect()
    }

    /// Drain GIOP messages to multicast into a caller-provided scratch
    /// vector (appended), so a steady-state pump allocates nothing.
    pub fn drain_outbound_into(&mut self, out: &mut Vec<OutboundMsg>) {
        out.extend(self.outbound.drain(..));
    }

    /// Drain completed invocations.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Drain completed invocations into a caller-provided scratch vector
    /// (appended).
    pub fn drain_completions_into(&mut self, out: &mut Vec<Completion>) {
        out.extend(self.completions.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::{decode_i64_result, encode_i64_arg, BankAccount};
    use ftmp_core::{GroupId, ProcessorId, SeqNum, Timestamp};

    pub(super) fn og_client() -> ObjectGroupId {
        ObjectGroupId::new(1, 1)
    }
    pub(super) fn og_server() -> ObjectGroupId {
        ObjectGroupId::new(1, 2)
    }
    pub(super) fn conn() -> ConnectionId {
        ConnectionId::new(og_client(), og_server())
    }

    pub(super) fn delivery(num: u64, source: u32, ts: u64, giop: Vec<u8>) -> Delivery {
        Delivery {
            group: GroupId(1),
            conn: conn(),
            request_num: RequestNum(num),
            source: ProcessorId(source),
            seq: SeqNum(1),
            ts: Timestamp(ts),
            giop: Bytes::from(giop),
        }
    }

    pub(super) fn server_endpoint() -> OrbEndpoint {
        let mut e = OrbEndpoint::new();
        e.host_replica(
            og_server(),
            b"bank".to_vec(),
            Box::new(BankAccount::with_balance(100)),
        );
        e
    }

    #[test]
    fn request_executes_once_despite_replica_duplicates() {
        let mut server = server_endpoint();
        let giop =
            giop_map::make_request(RequestNum(1), b"bank", "deposit", &encode_i64_arg(10), true);
        // Three client replicas multicast the same request.
        for (src, ts) in [(1, 10), (2, 10), (3, 10)] {
            server.on_delivery(&delivery(1, src, ts, giop.clone()));
        }
        let out = server.drain_outbound();
        assert_eq!(out.len(), 1, "one reply for three request copies");
        assert_eq!(server.suppression_counts().0, 2);
        // The servant ran exactly once.
        let parsed = giop_map::parse(&out[0].giop).unwrap();
        match parsed {
            Inbound::Reply { result } => assert_eq!(decode_i64_result(&result), Some(110)),
            other => panic!("expected reply, got {other:?}"),
        }
    }

    #[test]
    fn reply_completes_invocation_once() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        let num = client.invoke(conn(), b"bank", "deposit", &encode_i64_arg(10));
        assert_eq!(num, RequestNum(1));
        assert_eq!(client.drain_outbound().len(), 1);
        assert_eq!(client.pending_count(), 1);
        let reply = giop_map::make_reply(num, &encode_i64_arg(110));
        // Two server replicas each multicast the reply.
        client.on_delivery(&delivery(1, 10, 20, reply.clone()));
        client.on_delivery(&delivery(1, 11, 21, reply));
        let done = client.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].result, InvocationResult::Ok(encode_i64_arg(110)));
        assert_eq!(client.pending_count(), 0);
        assert_eq!(client.suppression_counts().1, 1);
    }

    #[test]
    fn exception_reply_propagates() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        let num = client.invoke(conn(), b"bank", "withdraw", &encode_i64_arg(1_000_000));
        client.drain_outbound();
        let reply = giop_map::make_exception_reply(num, "IDL:Bank/InsufficientFunds:1.0");
        client.on_delivery(&delivery(num.0, 10, 20, reply));
        let done = client.drain_completions();
        assert_eq!(
            done[0].result,
            InvocationResult::Exception("IDL:Bank/InsufficientFunds:1.0".into())
        );
    }

    #[test]
    fn request_numbers_monotonic_per_connection() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        let a = client.invoke(conn(), b"k", "op", &[]);
        let b = client.invoke(conn(), b"k", "op", &[]);
        assert!(b > a);
    }

    #[test]
    fn requests_for_unhosted_objects_ignored() {
        let mut server = server_endpoint();
        let giop = giop_map::make_request(RequestNum(1), b"unknown", "op", &[], true);
        server.on_delivery(&delivery(1, 1, 10, giop));
        assert!(server.drain_outbound().is_empty());
    }

    #[test]
    fn client_sees_its_own_request_but_does_not_execute_it() {
        // Deliveries reach both groups (§4); a pure client must log but not
        // execute requests.
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        let giop =
            giop_map::make_request(RequestNum(1), b"bank", "deposit", &encode_i64_arg(1), true);
        client.on_delivery(&delivery(1, 1, 10, giop));
        assert!(client.drain_outbound().is_empty());
        assert_eq!(client.log.len(), 1, "logged for replay");
    }

    #[test]
    fn log_matches_request_with_reply() {
        let mut server = server_endpoint();
        let giop = giop_map::make_request(RequestNum(1), b"bank", "balance", &[], true);
        server.on_delivery(&delivery(1, 1, 10, giop));
        // The server logs the request; replies are logged where delivered.
        assert!(server.log.request_for(conn(), RequestNum(1)).is_some());
    }

    #[test]
    fn locate_request_answered_by_hosting_group() {
        let mut server = server_endpoint();
        let giop = giop_map::make_locate_request(RequestNum(5), b"bank");
        server.on_delivery(&delivery(5, 1, 10, giop));
        let out = server.drain_outbound();
        assert_eq!(out.len(), 1);
        match giop_map::parse(&out[0].giop).unwrap() {
            Inbound::LocateReply { status } => {
                assert_eq!(status, ftmp_giop::LocateStatus::ObjectHere);
            }
            other => panic!("expected locate reply, got {other:?}"),
        }
        // Unknown key: UnknownObject.
        let giop = giop_map::make_locate_request(RequestNum(6), b"nope");
        server.on_delivery(&delivery(6, 1, 11, giop));
        let out = server.drain_outbound();
        match giop_map::parse(&out[0].giop).unwrap() {
            Inbound::LocateReply { status } => {
                assert_eq!(status, ftmp_giop::LocateStatus::UnknownObject);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn locate_completes_at_client() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        let num = client.locate(conn(), b"bank");
        client.drain_outbound();
        let reply = giop_map::make_locate_reply(num, ftmp_giop::LocateStatus::ObjectHere);
        client.on_delivery(&delivery(num.0, 10, 20, reply));
        let done = client.drain_completions();
        assert_eq!(done[0].result, InvocationResult::Located { here: true });
    }

    #[test]
    fn cancel_before_request_skips_execution_everywhere() {
        // Total order: the cancel is delivered before the request at every
        // replica, so no replica executes.
        let mut server = server_endpoint();
        let cancel = giop_map::make_cancel(RequestNum(1));
        let req =
            giop_map::make_request(RequestNum(1), b"bank", "deposit", &encode_i64_arg(10), true);
        server.on_delivery(&delivery(1, 1, 10, cancel));
        server.on_delivery(&delivery(1, 1, 11, req));
        assert!(
            server.drain_outbound().is_empty(),
            "cancelled request produces no reply"
        );
    }

    #[test]
    fn cancel_after_request_is_a_no_op() {
        let mut server = server_endpoint();
        let req =
            giop_map::make_request(RequestNum(1), b"bank", "deposit", &encode_i64_arg(10), true);
        let cancel = giop_map::make_cancel(RequestNum(1));
        server.on_delivery(&delivery(1, 1, 10, req));
        server.on_delivery(&delivery(1, 1, 11, cancel));
        assert_eq!(server.drain_outbound().len(), 1, "reply already produced");
    }

    #[test]
    fn fragmented_request_reassembles_and_executes_once() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        client.enable_fragmentation(256);
        // A request far larger than the datagram budget.
        let num = client.invoke(conn(), b"bank", "deposit", &vec![0u8; 2_000]);
        let parts = client.drain_outbound();
        assert!(parts.len() > 1, "request was fragmented");
        for p in &parts {
            assert!(p.giop.len() <= 256);
            assert_eq!(p.request_num, num);
        }
        // Server (also fragmentation-aware) reassembles and executes.
        let mut server = server_endpoint();
        server.enable_fragmentation(256);
        for (i, p) in parts.iter().enumerate() {
            server.on_delivery(&delivery(num.0, 1, 10 + i as u64, p.giop.to_vec()));
        }
        let out = server.drain_outbound();
        assert_eq!(out.len(), 1, "one reply after reassembly");
        // The log holds the complete reassembled request, not the tail.
        let logged = server.log.request_for(conn(), num).unwrap();
        assert!(logged.giop.len() > 2_000);
    }

    #[test]
    fn fragmented_reply_completes_invocation() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        client.enable_fragmentation(128);
        let num = client.invoke(conn(), b"bank", "balance", &[]);
        client.drain_outbound();
        // Build a big reply and fragment it manually.
        let reply = giop_map::make_reply(num, &vec![7u8; 1_000]);
        let parts = ftmp_giop::Fragmenter::new(128).split(&reply).unwrap();
        assert!(parts.len() > 1);
        for (i, p) in parts.iter().enumerate() {
            client.on_delivery(&delivery(num.0, 10, 20 + i as u64, p.clone()));
        }
        let done = client.drain_completions();
        assert_eq!(done.len(), 1);
        match &done[0].result {
            InvocationResult::Ok(b) => assert_eq!(b.len(), 1_000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn deterministic_replicas_produce_identical_replies() {
        let mut s1 = server_endpoint();
        let mut s2 = server_endpoint();
        for num in 1..=5u64 {
            let giop = giop_map::make_request(
                RequestNum(num),
                b"bank",
                "deposit",
                &encode_i64_arg(num as i64),
                true,
            );
            s1.on_delivery(&delivery(num, 1, num * 10, giop.clone()));
            s2.on_delivery(&delivery(num, 1, num * 10, giop));
        }
        let o1: Vec<Bytes> = s1.drain_outbound().into_iter().map(|o| o.giop).collect();
        let o2: Vec<Bytes> = s2.drain_outbound().into_iter().map(|o| o.giop).collect();
        assert_eq!(o1, o2, "active replicas emit byte-identical replies");
    }
}

#[cfg(test)]
mod close_tests {
    use super::tests::*;
    use super::*;
    use crate::giop_map;
    use crate::servant::encode_i64_arg;

    #[test]
    fn requests_after_an_ordered_close_are_dropped_everywhere() {
        let mut server = server_endpoint();
        let before =
            giop_map::make_request(RequestNum(1), b"bank", "deposit", &encode_i64_arg(5), true);
        let close = giop_map::make_close();
        let after =
            giop_map::make_request(RequestNum(3), b"bank", "deposit", &encode_i64_arg(7), true);
        server.on_delivery(&delivery(1, 1, 10, before));
        server.on_delivery(&delivery(2, 1, 11, close));
        server.on_delivery(&delivery(3, 1, 12, after));
        let out = server.drain_outbound();
        assert_eq!(out.len(), 1, "only the pre-close request was served");
        assert!(server.is_closed(conn()));
    }

    #[test]
    fn close_clears_pending_invocations_at_clients() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        client.invoke(conn(), b"bank", "balance", &[]);
        client.drain_outbound();
        assert_eq!(client.pending_count(), 1);
        let close = giop_map::make_close();
        client.on_delivery(&delivery(2, 10, 20, close));
        assert_eq!(client.pending_count(), 0, "orphaned invocations cleared");
        assert!(client.is_closed(conn()));
    }

    #[test]
    fn close_api_emits_a_close_message() {
        let mut client = OrbEndpoint::new();
        client.register_client(conn());
        client.close(conn());
        let out = client.drain_outbound();
        assert_eq!(out.len(), 1);
        assert_eq!(
            giop_map::parse(&out[0].giop).unwrap(),
            crate::giop_map::Inbound::Other(ftmp_giop::MsgType::CloseConnection)
        );
    }
}
