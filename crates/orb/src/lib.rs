#![warn(missing_docs)]
//! A miniature fault-tolerant ORB over FTMP.
//!
//! The paper's purpose is to carry CORBA method invocations between
//! *object groups* — sets of object replicas kept strongly consistent by
//! totally-ordered multicast. This crate supplies the ORB-side machinery
//! that the paper assumes around FTMP:
//!
//! * [`Servant`] — the application object interface (operation dispatch plus
//!   state snapshot/restore for replica activation),
//! * [`giop_map`] — building and parsing GIOP Requests/Replies for
//!   operations (the concrete GIOP mapping of §3.1),
//! * [`DuplicateDetector`] — `(connection id, request number)` duplicate
//!   detection and suppression across replicas (§4),
//! * [`MessageLog`] — the per-connection message log used to match requests
//!   with replies during replay (§4),
//! * [`ShardSet`] — per-connection engine state (duplicate detection,
//!   request numbering, request/reply matching, latency histograms) split
//!   across hash-indexed [`ConnectionShard`]s so independent connections
//!   share no lookup structure,
//! * [`OrbEndpoint`] — one processor's ORB: active replication of hosted
//!   servants, request numbering shared across replicas, reply matching,
//! * [`OrbNode`] — an [`ftmp_net::SimNode`] combining an FTMP
//!   [`ftmp_core::Processor`] with an [`OrbEndpoint`]: a complete replicated
//!   CORBA endpoint for the simulator (and the blueprint for the live
//!   examples).

pub mod dup;
pub mod endpoint;
pub mod giop_map;
pub mod log;
pub mod node;
pub mod passive;
pub mod servant;
pub mod shard;

pub use dup::DuplicateDetector;
pub use endpoint::{Completion, InvocationResult, OrbEndpoint, OutboundMsg};
pub use log::MessageLog;
pub use node::OrbNode;
pub use passive::ReplicationStyle;
pub use servant::{BankAccount, Counter, Servant};
pub use shard::{ConnectionShard, ShardSet};
