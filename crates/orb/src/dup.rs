//! Duplicate detection and suppression (§4).
//!
//! Every client replica multicasts the same request with the same
//! `(connection id, request number)`, and every server replica multicasts a
//! reply with the same pair, so each side receives up to *k* copies of each
//! message. The pair is unique ("request numbers are monotonically
//! increasing over all connections between the two groups; therefore each
//! connection identifier, request number pair is unique"), which makes
//! suppression a set-membership test — implemented here as a per-connection
//! low-watermark plus a window of recent numbers, so memory stays bounded
//! without ever re-admitting a duplicate.

use ftmp_core::{ConnectionId, RequestNum};
use std::collections::{BTreeMap, BTreeSet};

/// Tracks which `(connection, request number)` pairs have been seen.
#[derive(Debug, Default)]
pub struct DuplicateDetector {
    per_conn: BTreeMap<ConnectionId, ConnState>,
    /// Duplicates suppressed so far (experiment E7).
    pub suppressed: u64,
}

#[derive(Debug, Default)]
struct ConnState {
    /// Every number ≤ watermark has been seen.
    watermark: u64,
    /// Seen numbers above the watermark.
    above: BTreeSet<u64>,
}

impl ConnState {
    fn insert(&mut self, n: u64) -> bool {
        if n <= self.watermark || self.above.contains(&n) {
            return false;
        }
        self.above.insert(n);
        // Advance the watermark over any now-contiguous run.
        while self.above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        true
    }

    fn contains(&self, n: u64) -> bool {
        n <= self.watermark || self.above.contains(&n)
    }
}

impl DuplicateDetector {
    /// Record `(conn, num)`. Returns `true` the first time (process it) and
    /// `false` for every duplicate (suppress it).
    pub fn first_sighting(&mut self, conn: ConnectionId, num: RequestNum) -> bool {
        let fresh = self.per_conn.entry(conn).or_default().insert(num.0);
        if !fresh {
            self.suppressed += 1;
        }
        fresh
    }

    /// Has `(conn, num)` been seen?
    pub fn seen(&self, conn: ConnectionId, num: RequestNum) -> bool {
        self.per_conn.get(&conn).is_some_and(|c| c.contains(num.0))
    }

    /// Numbers retained above the contiguity watermark (memory check).
    pub fn window_size(&self, conn: ConnectionId) -> usize {
        self.per_conn.get(&conn).map_or(0, |c| c.above.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmp_core::ObjectGroupId;
    use proptest::prelude::*;

    fn conn(n: u32) -> ConnectionId {
        ConnectionId::new(ObjectGroupId::new(1, n), ObjectGroupId::new(2, n))
    }

    #[test]
    fn first_then_duplicates() {
        let mut d = DuplicateDetector::default();
        assert!(d.first_sighting(conn(1), RequestNum(1)));
        assert!(!d.first_sighting(conn(1), RequestNum(1)));
        assert!(!d.first_sighting(conn(1), RequestNum(1)));
        assert_eq!(d.suppressed, 2);
    }

    #[test]
    fn connections_are_independent() {
        let mut d = DuplicateDetector::default();
        assert!(d.first_sighting(conn(1), RequestNum(5)));
        assert!(d.first_sighting(conn(2), RequestNum(5)));
    }

    #[test]
    fn watermark_compacts_contiguous_numbers() {
        let mut d = DuplicateDetector::default();
        for n in 1..=1000 {
            assert!(d.first_sighting(conn(1), RequestNum(n)));
        }
        assert_eq!(d.window_size(conn(1)), 0, "contiguous run fully compacted");
        assert!(d.seen(conn(1), RequestNum(500)));
        assert!(!d.seen(conn(1), RequestNum(1001)));
    }

    #[test]
    fn out_of_order_numbers_compact_when_gap_fills() {
        let mut d = DuplicateDetector::default();
        d.first_sighting(conn(1), RequestNum(3));
        d.first_sighting(conn(1), RequestNum(2));
        assert_eq!(d.window_size(conn(1)), 2);
        d.first_sighting(conn(1), RequestNum(1));
        assert_eq!(d.window_size(conn(1)), 0);
        assert!(d.seen(conn(1), RequestNum(2)));
    }

    proptest! {
        /// Exactly one sighting per distinct number, however arrivals repeat
        /// and interleave.
        #[test]
        fn prop_exactly_once(arrivals in proptest::collection::vec(1u64..50, 0..300)) {
            let mut d = DuplicateDetector::default();
            let mut firsts = std::collections::BTreeSet::new();
            for n in &arrivals {
                if d.first_sighting(conn(1), RequestNum(*n)) {
                    prop_assert!(firsts.insert(*n), "number {} admitted twice", n);
                }
            }
            let distinct: std::collections::BTreeSet<u64> = arrivals.iter().copied().collect();
            prop_assert_eq!(firsts, distinct);
        }
    }
}
