//! Duplicate detection and suppression (§4).
//!
//! Every client replica multicasts the same request with the same
//! `(connection id, request number)`, and every server replica multicasts a
//! reply with the same pair, so each side receives up to *k* copies of each
//! message. The pair is unique ("request numbers are monotonically
//! increasing over all connections between the two groups; therefore each
//! connection identifier, request number pair is unique"), which makes
//! suppression a set-membership test — implemented here as a per-connection
//! low-watermark plus a window of recent numbers, so memory stays bounded
//! without ever re-admitting a duplicate.

use ftmp_core::{ConnectionId, RequestNum};
use std::collections::{BTreeMap, BTreeSet};

/// Default bound on per-connection sparse residue kept above the watermark.
pub const DEFAULT_RESIDUE_CAP: usize = 1024;

/// Tracks which `(connection, request number)` pairs have been seen.
///
/// Memory is bounded: each connection keeps a low-water mark (everything at
/// or below it counts as seen) plus at most `residue_cap` sparse numbers
/// above it. When the residue overflows, the smallest retained numbers are
/// evicted by advancing the watermark over them. This is safe on both sides:
///
/// - Advancing over a *gap* cannot re-admit a duplicate — everything the
///   watermark covers reads as already-seen.
/// - It cannot falsely suppress a fresh request either: request numbers are
///   monotone over *all* connections between two groups (§4), so a gap in
///   one connection's sequence belongs to sibling connections and never
///   arrives here. And within one connection, every client replica emits X
///   before Y when X < Y, so the first sighting of X precedes the first
///   sighting of Y on every merge of those streams — a fresh number below
///   an already-seen one does not occur.
#[derive(Debug)]
pub struct DuplicateDetector {
    per_conn: BTreeMap<ConnectionId, ConnState>,
    residue_cap: usize,
    /// Duplicates suppressed so far (experiment E7).
    pub suppressed: u64,
    /// Residue numbers folded into a watermark to stay within the cap.
    pub evictions: u64,
}

impl Default for DuplicateDetector {
    fn default() -> Self {
        Self::with_residue_cap(DEFAULT_RESIDUE_CAP)
    }
}

#[derive(Debug, Default)]
struct ConnState {
    /// Every number ≤ watermark has been seen.
    watermark: u64,
    /// Seen numbers above the watermark.
    above: BTreeSet<u64>,
}

impl ConnState {
    fn insert(&mut self, n: u64) -> bool {
        if n <= self.watermark || self.above.contains(&n) {
            return false;
        }
        self.above.insert(n);
        // Advance the watermark over any now-contiguous run.
        while self.above.remove(&(self.watermark + 1)) {
            self.watermark += 1;
        }
        true
    }

    fn contains(&self, n: u64) -> bool {
        n <= self.watermark || self.above.contains(&n)
    }

    /// Evict smallest residue numbers until at most `cap` remain, advancing
    /// the watermark over each (and over any run it becomes contiguous
    /// with). Returns how many were evicted.
    fn compact_to(&mut self, cap: usize) -> u64 {
        let mut evicted = 0u64;
        while self.above.len() > cap {
            let m = *self.above.iter().next().expect("len > cap > 0 entries");
            self.above.remove(&m);
            self.watermark = m;
            evicted += 1;
            while self.above.remove(&(self.watermark + 1)) {
                self.watermark += 1;
            }
        }
        evicted
    }
}

impl DuplicateDetector {
    /// A detector keeping at most `cap` sparse numbers per connection above
    /// the watermark.
    pub fn with_residue_cap(cap: usize) -> Self {
        DuplicateDetector {
            per_conn: BTreeMap::new(),
            residue_cap: cap.max(1),
            suppressed: 0,
            evictions: 0,
        }
    }

    /// Record `(conn, num)`. Returns `true` the first time (process it) and
    /// `false` for every duplicate (suppress it).
    pub fn first_sighting(&mut self, conn: ConnectionId, num: RequestNum) -> bool {
        let state = self.per_conn.entry(conn).or_default();
        let fresh = state.insert(num.0);
        if fresh {
            self.evictions += state.compact_to(self.residue_cap);
        } else {
            self.suppressed += 1;
        }
        fresh
    }

    /// Has `(conn, num)` been seen?
    pub fn seen(&self, conn: ConnectionId, num: RequestNum) -> bool {
        self.per_conn.get(&conn).is_some_and(|c| c.contains(num.0))
    }

    /// Numbers retained above the contiguity watermark (memory check).
    pub fn window_size(&self, conn: ConnectionId) -> usize {
        self.per_conn.get(&conn).map_or(0, |c| c.above.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmp_core::ObjectGroupId;
    use proptest::prelude::*;

    fn conn(n: u32) -> ConnectionId {
        ConnectionId::new(ObjectGroupId::new(1, n), ObjectGroupId::new(2, n))
    }

    #[test]
    fn first_then_duplicates() {
        let mut d = DuplicateDetector::default();
        assert!(d.first_sighting(conn(1), RequestNum(1)));
        assert!(!d.first_sighting(conn(1), RequestNum(1)));
        assert!(!d.first_sighting(conn(1), RequestNum(1)));
        assert_eq!(d.suppressed, 2);
    }

    #[test]
    fn connections_are_independent() {
        let mut d = DuplicateDetector::default();
        assert!(d.first_sighting(conn(1), RequestNum(5)));
        assert!(d.first_sighting(conn(2), RequestNum(5)));
    }

    #[test]
    fn watermark_compacts_contiguous_numbers() {
        let mut d = DuplicateDetector::default();
        for n in 1..=1000 {
            assert!(d.first_sighting(conn(1), RequestNum(n)));
        }
        assert_eq!(d.window_size(conn(1)), 0, "contiguous run fully compacted");
        assert!(d.seen(conn(1), RequestNum(500)));
        assert!(!d.seen(conn(1), RequestNum(1001)));
    }

    #[test]
    fn out_of_order_numbers_compact_when_gap_fills() {
        let mut d = DuplicateDetector::default();
        d.first_sighting(conn(1), RequestNum(3));
        d.first_sighting(conn(1), RequestNum(2));
        assert_eq!(d.window_size(conn(1)), 2);
        d.first_sighting(conn(1), RequestNum(1));
        assert_eq!(d.window_size(conn(1)), 0);
        assert!(d.seen(conn(1), RequestNum(2)));
    }

    #[test]
    fn residue_stays_within_cap() {
        let mut d = DuplicateDetector::with_residue_cap(8);
        // All-odd numbers never compact naturally: every insert leaves a gap.
        for n in (1..=1000u64).map(|i| 2 * i + 1) {
            assert!(d.first_sighting(conn(1), RequestNum(n)));
        }
        assert!(d.window_size(conn(1)) <= 8, "cap enforced");
        assert!(d.evictions > 0, "overflow was folded into the watermark");
    }

    #[test]
    fn evicted_numbers_still_suppress_duplicates() {
        let mut d = DuplicateDetector::with_residue_cap(4);
        let nums: Vec<u64> = (1..=100u64).map(|i| 3 * i).collect();
        for &n in &nums {
            assert!(d.first_sighting(conn(1), RequestNum(n)));
        }
        // Every earlier number was either retained or folded under the
        // watermark; duplicates of both must be rejected.
        for &n in &nums {
            assert!(!d.first_sighting(conn(1), RequestNum(n)), "dup of {n}");
        }
        assert_eq!(d.suppressed, nums.len() as u64);
    }

    #[test]
    fn default_cap_is_invisible_at_small_scale() {
        let mut d = DuplicateDetector::default();
        for n in 1..=500u64 {
            d.first_sighting(conn(1), RequestNum(2 * n));
        }
        assert_eq!(d.evictions, 0, "500 sparse numbers fit the default cap");
    }

    proptest! {
        /// Exactly one sighting per distinct number, however arrivals repeat
        /// and interleave.
        #[test]
        fn prop_exactly_once(arrivals in proptest::collection::vec(1u64..50, 0..300)) {
            let mut d = DuplicateDetector::default();
            let mut firsts = std::collections::BTreeSet::new();
            for n in &arrivals {
                if d.first_sighting(conn(1), RequestNum(*n)) {
                    prop_assert!(firsts.insert(*n), "number {} admitted twice", n);
                }
            }
            let distinct: std::collections::BTreeSet<u64> = arrivals.iter().copied().collect();
            prop_assert_eq!(firsts, distinct);
        }
    }
}
