//! A complete replicated-CORBA endpoint for the simulator: FTMP processor
//! below, ORB above.

use crate::endpoint::{Completion, InvocationResult, OrbEndpoint, OutboundMsg};
use ftmp_core::{Action, ConnectionId, Delivery, Processor, ProtocolEvent, RequestNum, SendError};
use ftmp_net::{Outbox, Packet, SimNode, SimTime};
use ftmp_telemetry::HistogramSnapshot;
use std::collections::VecDeque;

/// Outbound GIOP messages parked while the processor reports backpressure.
/// Past this, further work is shed with a typed CORBA `TRANSIENT` exception
/// instead of growing the queue without bound.
const DEFERRED_CAP: usize = 64;

/// Repository id completing a shed invocation — the standard CORBA "try
/// again later" system exception.
const TRANSIENT_REPO_ID: &str = "IDL:omg.org/CORBA/TRANSIENT:1.0";

/// An [`ftmp_net::SimNode`] hosting an FTMP [`Processor`] and an
/// [`OrbEndpoint`]. Deliveries flow up into the ORB; the ORB's outbound
/// GIOP messages flow down as Regular multicasts; completions and protocol
/// events queue for the harness.
pub struct OrbNode {
    proc: Processor,
    orb: OrbEndpoint,
    events: VecDeque<ProtocolEvent>,
    completions: VecDeque<Completion>,
    /// Raw deliveries (latency measurement at the harness).
    deliveries_seen: u64,
    /// Outbound messages awaiting `Action::SendReady` (bounded).
    deferred: VecDeque<OutboundMsg>,
    /// True between `Action::Backpressure` and `Action::SendReady`.
    blocked: bool,
    /// Invocations shed with `TRANSIENT` because the deferred queue was full.
    shed: u64,
    /// Reusable pump scratch: outbound GIOP messages for this iteration.
    send_scratch: Vec<OutboundMsg>,
    /// Reusable pump scratch: drained processor actions.
    act_scratch: Vec<Action>,
}

impl OrbNode {
    /// Combine a processor and an ORB endpoint.
    pub fn new(proc: Processor, orb: OrbEndpoint) -> Self {
        OrbNode {
            proc,
            orb,
            events: VecDeque::new(),
            completions: VecDeque::new(),
            deliveries_seen: 0,
            deferred: VecDeque::new(),
            blocked: false,
            shed: 0,
            send_scratch: Vec::new(),
            act_scratch: Vec::new(),
        }
    }

    /// Start recording invocation-to-completion latency per connection.
    /// Purely observational: enabling it changes no wire behaviour. The
    /// histograms live in the connection shards, next to the rest of each
    /// connection's state.
    pub fn enable_latency_telemetry(&mut self) {
        self.orb.shards.enable_latency();
    }

    /// Snapshot of the request-latency histogram for one connection, if
    /// latency telemetry is enabled and the connection completed anything.
    pub fn request_latency(&self, conn: ConnectionId) -> Option<HistogramSnapshot> {
        self.orb.shards.latency_snapshot(conn)
    }

    /// All per-connection request-latency snapshots recorded so far.
    pub fn request_latencies(
        &self,
    ) -> impl Iterator<Item = (ConnectionId, HistogramSnapshot)> + '_ {
        self.orb.shards.latency_snapshots()
    }

    /// The FTMP engine.
    pub fn proc(&self) -> &Processor {
        &self.proc
    }

    /// Mutable FTMP engine (drive through [`ftmp_net::SimNet::with_node`]).
    pub fn proc_mut(&mut self) -> &mut Processor {
        &mut self.proc
    }

    /// The ORB endpoint.
    pub fn orb(&self) -> &OrbEndpoint {
        &self.orb
    }

    /// Mutable ORB endpoint.
    pub fn orb_mut(&mut self) -> &mut OrbEndpoint {
        &mut self.orb
    }

    /// Invoke an operation and pump the resulting request onto the wire.
    /// Returns the request number to match against completions.
    pub fn invoke(
        &mut self,
        now: SimTime,
        conn: ConnectionId,
        object_key: &[u8],
        operation: &str,
        args: &[u8],
        out: &mut Outbox,
    ) -> RequestNum {
        let num = self.orb.invoke(conn, object_key, operation, args);
        self.orb.shards.note_invocation_start(conn, num, now);
        self.pump(now, out);
        num
    }

    /// Drain completed invocations.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        self.completions.drain(..).collect()
    }

    /// Drain protocol events.
    pub fn take_events(&mut self) -> Vec<ProtocolEvent> {
        self.events.drain(..).collect()
    }

    /// Ordered deliveries observed so far.
    pub fn deliveries_seen(&self) -> u64 {
        self.deliveries_seen
    }

    /// Outbound messages currently parked behind backpressure.
    pub fn deferred_len(&self) -> usize {
        self.deferred.len()
    }

    /// Invocations shed with `TRANSIENT` since construction.
    pub fn shed_count(&self) -> u64 {
        self.shed
    }

    /// True between `Action::Backpressure` and `Action::SendReady`.
    pub fn is_backpressured(&self) -> bool {
        self.blocked
    }

    /// Datagram-packing counters of the underlying processor, as
    /// `(packed_datagrams_sent, messages_packed, heartbeats_suppressed)`.
    /// All zero when `cfg.packing` is disabled — the ORB behaves
    /// identically either way; packing is invisible above the transport.
    pub fn packing_counters(&self) -> (u64, u64, u64) {
        let s = self.proc.stats();
        (
            s.packed_datagrams_sent,
            s.messages_packed,
            s.heartbeats_suppressed,
        )
    }

    /// Park an outbound message, or shed it with a typed `TRANSIENT`
    /// completion when the parking lot is full.
    fn defer_or_shed(&mut self, ob: OutboundMsg) {
        if self.deferred.len() < DEFERRED_CAP {
            self.deferred.push_back(ob);
        } else {
            self.shed += 1;
            self.completions.push_back(Completion {
                conn: ob.conn,
                request_num: ob.request_num,
                result: InvocationResult::Exception(TRANSIENT_REPO_ID.to_string()),
            });
        }
    }

    /// Move data between the layers and the network until quiescent.
    ///
    /// Each iteration submits every ready outbound message inside one
    /// processor batch (so the Packer flushes once per iteration, not once
    /// per message) and drains actions through reusable scratch vectors —
    /// a steady-state pump allocates nothing.
    pub fn pump(&mut self, now: SimTime, out: &mut Outbox) {
        loop {
            // ORB → FTMP: deferred work first (FIFO across backpressure
            // episodes), then fresh outbound — but only submit while the
            // window is open, so a closed window parks instead of spinning.
            let mut to_send = std::mem::take(&mut self.send_scratch);
            if !self.blocked {
                to_send.extend(self.deferred.drain(..));
            }
            self.orb.drain_outbound_into(&mut to_send);
            let had_outbound = !to_send.is_empty();
            self.proc.begin_batch();
            for ob in to_send.drain(..) {
                if self.blocked {
                    self.defer_or_shed(ob);
                    continue;
                }
                if let Err(SendError::Backpressured) =
                    self.proc
                        .multicast_request(now, ob.conn, ob.request_num, ob.giop.clone())
                {
                    self.blocked = true;
                    self.defer_or_shed(ob);
                }
            }
            self.proc.end_batch(now);
            self.send_scratch = to_send;
            // FTMP → network + ORB.
            let mut actions = std::mem::take(&mut self.act_scratch);
            self.proc.drain_actions_into(&mut actions);
            if actions.is_empty() && !had_outbound {
                self.act_scratch = actions;
                break;
            }
            for action in actions.drain(..) {
                match action {
                    Action::Send { addr, payload } => {
                        out.send(Packet::new(self.proc.id().0, addr, payload));
                    }
                    Action::Join(addr) => out.join(addr),
                    Action::Leave(addr) => out.leave(addr),
                    Action::Deliver(d) => {
                        self.deliveries_seen += 1;
                        self.feed_orb(&d);
                    }
                    Action::Event(e) => {
                        if let ProtocolEvent::MembershipChange { members, .. } = &e {
                            // Warm-passive groups repoint their primary (and
                            // replay pending requests) at the membership
                            // change, like every other survivor.
                            self.orb.note_membership_all(members);
                        }
                        self.events.push_back(e);
                    }
                    Action::Backpressure(_) => self.blocked = true,
                    // Deferred work is retried on the next loop iteration.
                    Action::SendReady(_) => self.blocked = false,
                }
            }
            self.act_scratch = actions;
        }
        for c in self.orb.drain_completions() {
            self.orb
                .shards
                .record_completion(c.conn, c.request_num, now);
            self.completions.push_back(c);
        }
    }

    fn feed_orb(&mut self, d: &Delivery) {
        self.orb.on_delivery(d);
    }
}

impl SimNode for OrbNode {
    fn on_packet(&mut self, now: SimTime, pkt: &Packet, out: &mut Outbox) {
        self.proc.handle_packet(now, pkt);
        self.pump(now, out);
    }

    fn on_tick(&mut self, now: SimTime, out: &mut Outbox) {
        self.proc.tick(now);
        self.pump(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servant::{decode_i64_result, encode_i64_arg, BankAccount};
    use crate::InvocationResult;
    use ftmp_core::pgmp::ServerRegistration;
    use ftmp_core::{ClockMode, ConnectionId, GroupId, ObjectGroupId, ProcessorId, ProtocolConfig};
    use ftmp_net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet};

    const DOMAIN_ADDR: McastAddr = McastAddr(500);
    const GROUP_ADDR: McastAddr = McastAddr(600);

    fn og_client() -> ObjectGroupId {
        ObjectGroupId::new(1, 1)
    }
    fn og_server() -> ObjectGroupId {
        ObjectGroupId::new(2, 7)
    }
    fn conn() -> ConnectionId {
        ConnectionId::new(og_client(), og_server())
    }

    /// 2 client processors + 3 server replicas, connected through the full
    /// ConnectRequest/Connect handshake.
    fn build(seed: u64, loss: LossModel) -> SimNet<OrbNode> {
        build_with(seed, loss, ProtocolConfig::with_seed(seed))
    }

    fn build_with(seed: u64, loss: LossModel, cfg: ProtocolConfig) -> SimNet<OrbNode> {
        let sim_cfg = SimConfig::with_seed(seed).loss(loss);
        let mut net = SimNet::new(sim_cfg);
        net.set_classifier(ftmp_core::wire::classify);
        let clients = [ProcessorId(1), ProcessorId(2)];
        let servers = [ProcessorId(3), ProcessorId(4), ProcessorId(5)];
        for id in 1..=5u32 {
            let mut proc =
                ftmp_core::Processor::new(ProcessorId(id), cfg.clone(), ClockMode::Lamport);
            let mut orb = OrbEndpoint::new();
            if id <= 2 {
                orb.register_client(conn());
            } else {
                orb.host_replica(
                    og_server(),
                    b"bank".to_vec(),
                    Box::new(BankAccount::with_balance(1_000)),
                );
                proc.register_server(
                    og_server(),
                    ServerRegistration {
                        processors: servers.to_vec(),
                        pool: vec![(GroupId(10), GROUP_ADDR)],
                    },
                    DOMAIN_ADDR,
                );
            }
            let node = OrbNode::new(proc, orb);
            net.add_node(id, node);
            // Apply the initial actions (servers join the domain address).
            net.with_node(id, |n, now, out| n.pump(now, out));
        }
        // Clients open the connection.
        for id in 1..=2u32 {
            net.with_node(id, |n, now, out| {
                n.proc_mut()
                    .open_connection(now, conn(), clients.to_vec(), DOMAIN_ADDR);
                n.pump(now, out);
            });
        }
        net
    }

    fn wait_connected(net: &mut SimNet<OrbNode>) {
        for _ in 0..200 {
            net.run_for(SimDuration::from_millis(5));
            let all = (1..=5u32).all(|id| {
                net.node(id)
                    .unwrap()
                    .proc()
                    .connection_group(conn())
                    .is_some()
            });
            if all {
                return;
            }
        }
        panic!("connection never established on all endpoints");
    }

    #[test]
    fn second_connection_shares_the_processor_group() {
        // §7: "these mechanisms allow several logical connections to share
        // the same physical connection, the same processor group and the
        // same IP Multicast address."
        let mut net = build(29, LossModel::None);
        wait_connected(&mut net);
        let g1 = net
            .node(1)
            .unwrap()
            .proc()
            .connection_group(conn())
            .unwrap();
        // A second object-group pair between the same processor sets.
        let conn2 = ConnectionId::new(ObjectGroupId::new(1, 9), og_server());
        for id in 1..=2u32 {
            net.with_node(id, move |n, now, out| {
                n.orb_mut().register_client(conn2);
                n.proc_mut().open_connection(
                    now,
                    conn2,
                    vec![ProcessorId(1), ProcessorId(2)],
                    DOMAIN_ADDR,
                );
                n.pump(now, out);
            });
        }
        net.run_for(SimDuration::from_millis(200));
        for id in 1..=5u32 {
            let g2 = net.node(id).unwrap().proc().connection_group(conn2);
            assert_eq!(g2, Some(g1), "P{id}: conn2 shares conn1's group");
        }
        // Both connections carry traffic independently.
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"bank", "deposit", &encode_i64_arg(1), out);
        });
        net.with_node(1, move |n, now, out| {
            n.invoke(now, conn2, b"bank", "deposit", &encode_i64_arg(2), out);
        });
        net.run_for(SimDuration::from_millis(200));
        let done = net.node_mut(1).unwrap().take_completions();
        assert_eq!(done.len(), 2);
        let conns: std::collections::BTreeSet<ConnectionId> = done.iter().map(|c| c.conn).collect();
        assert!(conns.contains(&conn()) && conns.contains(&conn2));
    }

    #[test]
    fn end_to_end_connection_and_invocation() {
        let mut net = build(21, LossModel::None);
        wait_connected(&mut net);
        // Both client replicas issue the same invocation (active replication).
        for id in 1..=2u32 {
            net.with_node(id, |n, now, out| {
                n.invoke(now, conn(), b"bank", "deposit", &encode_i64_arg(250), out);
            });
        }
        net.run_for(SimDuration::from_millis(200));
        // Every server replica applied the deposit exactly once.
        for id in 3..=5u32 {
            let node = net.node(id).unwrap();
            let servant = node.orb().servant(og_server()).unwrap();
            let snap = servant.snapshot();
            let balance = ftmp_cdr::CdrReader::new(&snap, ftmp_cdr::ByteOrder::Big)
                .read_i64()
                .unwrap();
            assert_eq!(balance, 1_250, "server P{id} balance");
        }
        // Each client replica completed exactly one invocation.
        for id in 1..=2u32 {
            let done = net.node_mut(id).unwrap().take_completions();
            assert_eq!(done.len(), 1, "client P{id} completions");
            match &done[0].result {
                InvocationResult::Ok(bytes) => {
                    assert_eq!(decode_i64_result(bytes), Some(1_250));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // Duplicate suppression did real work: 2 client replicas → 1 extra
        // request copy suppressed at each server.
        for id in 3..=5u32 {
            let (req_sup, _) = net.node(id).unwrap().orb().suppression_counts();
            assert_eq!(req_sup, 1, "server P{id} suppressed the twin request");
        }
    }

    #[test]
    fn invocations_survive_packet_loss() {
        let mut net = build(22, LossModel::Iid { p: 0.15 });
        wait_connected(&mut net);
        for round in 0..5u64 {
            for id in 1..=2u32 {
                net.with_node(id, |n, now, out| {
                    n.invoke(now, conn(), b"bank", "deposit", &encode_i64_arg(10), out);
                });
            }
            let _ = round;
            net.run_for(SimDuration::from_millis(50));
        }
        net.run_for(SimDuration::from_millis(500));
        for id in 3..=5u32 {
            let snap = net
                .node(id)
                .unwrap()
                .orb()
                .servant(og_server())
                .unwrap()
                .snapshot();
            let balance = ftmp_cdr::CdrReader::new(&snap, ftmp_cdr::ByteOrder::Big)
                .read_i64()
                .unwrap();
            assert_eq!(balance, 1_050, "5 rounds × 10 applied once each");
        }
        for id in 1..=2u32 {
            let done = net.node_mut(id).unwrap().take_completions();
            assert_eq!(done.len(), 5);
        }
        assert!(net.stats().lost > 0);
    }

    #[test]
    fn backpressure_defers_then_sheds_with_transient() {
        let cfg = ftmp_core::ProtocolConfig::with_seed(31)
            .flow_control(ftmp_core::FlowControl::window(4, 1));
        let mut net = build_with(31, LossModel::None, cfg);
        wait_connected(&mut net);
        // Flood far past the send window and the deferred queue from one
        // client in a single instant.
        const FLOOD: usize = 100;
        net.with_node(1, |n, now, out| {
            for _ in 0..FLOOD {
                n.invoke(now, conn(), b"bank", "deposit", &encode_i64_arg(1), out);
            }
        });
        let node = net.node(1).unwrap();
        assert!(node.is_backpressured(), "window closed under the flood");
        assert!(node.deferred_len() > 0, "work parked rather than dropped");
        assert!(node.shed_count() > 0, "overflow shed, not queued unbounded");
        let shed = node.shed_count() as usize;
        let stats = node.proc().stats();
        assert!(stats.backpressure_closes >= 1);
        // Let acks circulate: the window reopens and parked work drains.
        net.run_for(SimDuration::from_millis(5_000));
        let node = net.node_mut(1).unwrap();
        assert_eq!(node.deferred_len(), 0, "deferred queue fully drained");
        let done = node.take_completions();
        assert_eq!(done.len(), FLOOD, "every invocation completed one way");
        let transients = done
            .iter()
            .filter(|c| {
                matches!(&c.result, InvocationResult::Exception(e)
                    if e == "IDL:omg.org/CORBA/TRANSIENT:1.0")
            })
            .count();
        assert_eq!(transients, shed, "shed invocations completed as TRANSIENT");
        assert!(
            done.iter()
                .any(|c| matches!(&c.result, InvocationResult::Ok(_))),
            "non-shed invocations completed normally"
        );
    }

    #[test]
    fn request_latency_telemetry_records_per_connection() {
        let mut net = build(27, LossModel::None);
        wait_connected(&mut net);
        net.with_node(1, |n, _, _| n.enable_latency_telemetry());
        for _ in 0..3 {
            net.with_node(1, |n, now, out| {
                n.invoke(now, conn(), b"bank", "deposit", &encode_i64_arg(5), out);
            });
            net.run_for(SimDuration::from_millis(100));
        }
        let node = net.node_mut(1).unwrap();
        assert_eq!(node.take_completions().len(), 3);
        let snap = node.request_latency(conn()).expect("histogram recorded");
        assert_eq!(snap.count, 3, "one sample per completed invocation");
        assert!(snap.p50 > 0, "invocations take non-zero virtual time");
        assert!(snap.max >= snap.p50);
        let all: Vec<_> = node.request_latencies().collect();
        assert_eq!(all.len(), 1, "exactly the one active connection");
        // Telemetry stays off (and free) elsewhere.
        assert!(net.node(2).unwrap().request_latency(conn()).is_none());
    }

    #[test]
    fn server_replica_crash_preserves_service() {
        let mut net = build(23, LossModel::None);
        wait_connected(&mut net);
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"bank", "deposit", &encode_i64_arg(100), out);
        });
        net.run_for(SimDuration::from_millis(100));
        // Crash one server replica; survivors reconfigure and keep serving.
        net.crash(5);
        net.run_for(SimDuration::from_millis(800));
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"bank", "withdraw", &encode_i64_arg(50), out);
        });
        net.run_for(SimDuration::from_millis(400));
        let done = net.node_mut(1).unwrap().take_completions();
        assert_eq!(
            done.len(),
            2,
            "both invocations completed despite the crash"
        );
        for id in 3..=4u32 {
            let snap = net
                .node(id)
                .unwrap()
                .orb()
                .servant(og_server())
                .unwrap()
                .snapshot();
            let balance = ftmp_cdr::CdrReader::new(&snap, ftmp_cdr::ByteOrder::Big)
                .read_i64()
                .unwrap();
            assert_eq!(balance, 1_050);
        }
        // The fault was reported upward.
        let events = net.node_mut(3).unwrap().take_events();
        assert!(events.iter().any(|e| matches!(
            e,
            ftmp_core::ProtocolEvent::FaultReport { processor, .. }
            if *processor == ProcessorId(5)
        )));
    }
}
