//! Sharded per-connection engine state.
//!
//! The paper's §4 machinery — duplicate suppression, request matching,
//! request numbering — is keyed by `(connection id, request number)`, and
//! independent logical connections share none of it. Funnelling every
//! connection through one monolithic map per node therefore serializes
//! lookups that have no reason to contend and keeps unrelated connections'
//! state hot in the same structures. [`ShardSet`] splits that state across
//! [`ConnectionShard`]s indexed by a hash of the connection id: every
//! lookup touches exactly one shard, sized to the connections that actually
//! hash there.
//!
//! ```text
//!            ConnectionId ──FNV-1a──► shard index (& mask)
//!                                          │
//!        ┌────────────┬────────────┬───────┴────┬────────────┐
//!        ▼            ▼            ▼            ▼            ▼
//!   ┌─────────┐  ┌─────────┐  ┌─────────┐  ┌─────────┐  ┌─────────┐
//!   │ shard 0 │  │ shard 1 │  │ shard 2 │  │   ...   │  │ shard N │
//!   │ executed│  │ executed│  │ executed│  │         │  │ executed│
//!   │ replied │  │ replied │  │ replied │  │         │  │ replied │
//!   │ next_req│  │ next_req│  │ next_req│  │         │  │ next_req│
//!   │ pending │  │ pending │  │ pending │  │         │  │ pending │
//!   │ lat hist│  │ lat hist│  │ lat hist│  │         │  │ lat hist│
//!   └─────────┘  └─────────┘  └─────────┘  └─────────┘  └─────────┘
//! ```
//!
//! The shard count is a power of two so the index is a mask, and the hash
//! mixes all four words of the connection id so client-heavy and
//! server-heavy workloads spread evenly.

use crate::dup::DuplicateDetector;
use ftmp_core::{ConnectionId, RequestNum};
use ftmp_net::SimTime;
use ftmp_telemetry::{Histogram, HistogramSnapshot, Registry};
use std::collections::{BTreeMap, BTreeSet};

/// Default shard count (power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Bound on in-flight invocations tracked for latency per shard (defensive;
/// a request that never completes must not grow the map without limit).
const LAT_PENDING_CAP: usize = 4096;

/// One shard's slice of per-connection state: duplicate suppression,
/// request numbering, request/reply matching and latency telemetry for the
/// connections that hash here.
#[derive(Debug, Default)]
pub struct ConnectionShard {
    /// Next request number per connection (monotonic across the connection).
    next_request: BTreeMap<ConnectionId, u64>,
    /// Requests executed (server side) — suppresses replica duplicates.
    executed: DuplicateDetector,
    /// Replies consumed (client side) — suppresses replica duplicates.
    replied: DuplicateDetector,
    /// Invocations awaiting replies.
    pending: BTreeSet<(ConnectionId, RequestNum)>,
    /// Requests cancelled by an ordered CancelRequest.
    cancelled: BTreeSet<(ConnectionId, RequestNum)>,
    /// Connections closed by an ordered CloseConnection.
    closed: BTreeSet<ConnectionId>,
    /// Invocation start times (latency telemetry, off by default).
    lat_pending: BTreeMap<(ConnectionId, RequestNum), SimTime>,
    /// One request-latency histogram per connection.
    lat_hist: BTreeMap<ConnectionId, Histogram>,
}

/// Per-connection engine state split across hash-indexed shards.
#[derive(Debug)]
pub struct ShardSet {
    shards: Vec<ConnectionShard>,
    mask: usize,
    lat_enabled: bool,
}

impl Default for ShardSet {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl ShardSet {
    /// A set with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// A set with `n` shards, rounded up to a power of two (min 1).
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1).next_power_of_two();
        let mut shards = Vec::with_capacity(n);
        shards.resize_with(n, ConnectionShard::default);
        ShardSet {
            shards,
            mask: n - 1,
            lat_enabled: false,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// FNV-1a over the connection id's four words, masked to a shard index.
    pub fn shard_index(&self, conn: ConnectionId) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [
            conn.client.domain.0,
            conn.client.group,
            conn.server.domain.0,
            conn.server.group,
        ] {
            for b in w.to_le_bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        (h as usize) & self.mask
    }

    fn shard(&self, conn: ConnectionId) -> &ConnectionShard {
        let i = self.shard_index(conn);
        &self.shards[i]
    }

    fn shard_mut(&mut self, conn: ConnectionId) -> &mut ConnectionShard {
        let i = self.shard_index(conn);
        &mut self.shards[i]
    }

    // ---- request numbering ------------------------------------------------

    /// Allocate the next request number on `conn` (monotonic per
    /// connection; identical at every replica because allocation is driven
    /// by the same deterministic application).
    pub fn alloc_request(&mut self, conn: ConnectionId) -> RequestNum {
        let n = self.shard_mut(conn).next_request.entry(conn).or_insert(0);
        *n += 1;
        RequestNum(*n)
    }

    // ---- duplicate suppression --------------------------------------------

    /// First sighting of an executable request copy? (server side)
    pub fn first_execution(&mut self, conn: ConnectionId, num: RequestNum) -> bool {
        self.shard_mut(conn).executed.first_sighting(conn, num)
    }

    /// First sighting of a reply copy? (client side)
    pub fn first_reply(&mut self, conn: ConnectionId, num: RequestNum) -> bool {
        self.shard_mut(conn).replied.first_sighting(conn, num)
    }

    /// Duplicate-suppression counters summed over shards: (requests
    /// suppressed, replies suppressed) — experiment E7.
    pub fn suppression_counts(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(rq, rp), s| {
            (rq + s.executed.suppressed, rp + s.replied.suppressed)
        })
    }

    /// Residue numbers folded into duplicate-detector watermarks to stay
    /// within the per-connection memory bound, summed over shards.
    pub fn dup_evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.executed.evictions + s.replied.evictions)
            .sum()
    }

    /// Fold the duplicate-suppression counters into a telemetry registry
    /// (the `FTMP_METRICS_DIR` snapshot path). Counters add, so feed a
    /// fresh or merge-target registry.
    pub fn register_metrics(&self, reg: &mut Registry) {
        let (req, rep) = self.suppression_counts();
        let id = reg.counter("orb_requests_suppressed");
        reg.inc(id, req);
        let id = reg.counter("orb_replies_suppressed");
        reg.inc(id, rep);
        let id = reg.counter("orb_dup_evictions");
        reg.inc(id, self.dup_evictions());
    }

    // ---- durable-recovery warm start --------------------------------------

    /// Re-mark recovered request numbers as executed (server side). The §4
    /// watermark and sparse residue re-derive by replaying the numbers
    /// through the detector's own fold — there is no second fold
    /// implementation to drift. Returns how many were fresh (a recovered
    /// log holds no duplicates, so normally all of them).
    pub fn warm_start_executed(
        &mut self,
        conn: ConnectionId,
        nums: impl IntoIterator<Item = RequestNum>,
    ) -> u64 {
        let s = self.shard_mut(conn);
        let mut fresh = 0;
        for n in nums {
            if s.executed.first_sighting(conn, n) {
                fresh += 1;
            }
        }
        fresh
    }

    /// Re-mark recovered request numbers as replied (client side); the
    /// mirror of [`ShardSet::warm_start_executed`].
    pub fn warm_start_replied(
        &mut self,
        conn: ConnectionId,
        nums: impl IntoIterator<Item = RequestNum>,
    ) -> u64 {
        let s = self.shard_mut(conn);
        let mut fresh = 0;
        for n in nums {
            if s.replied.first_sighting(conn, n) {
                fresh += 1;
            }
        }
        fresh
    }

    // ---- request/reply matching -------------------------------------------

    /// Note an invocation awaiting a reply.
    pub fn note_pending(&mut self, conn: ConnectionId, num: RequestNum) {
        self.shard_mut(conn).pending.insert((conn, num));
    }

    /// Remove a pending invocation; true when it was present.
    pub fn remove_pending(&mut self, conn: ConnectionId, num: RequestNum) -> bool {
        self.shard_mut(conn).pending.remove(&(conn, num))
    }

    /// Outstanding invocations over all shards.
    pub fn pending_count(&self) -> usize {
        self.shards.iter().map(|s| s.pending.len()).sum()
    }

    /// Drop every pending invocation on `conn` (ordered close).
    pub fn clear_conn_pending(&mut self, conn: ConnectionId) {
        self.shard_mut(conn).pending.retain(|(c, _)| *c != conn);
    }

    /// Record an ordered CancelRequest.
    pub fn note_cancelled(&mut self, conn: ConnectionId, num: RequestNum) {
        self.shard_mut(conn).cancelled.insert((conn, num));
    }

    /// Was `(conn, num)` cancelled at an earlier total-order position?
    pub fn is_cancelled(&self, conn: ConnectionId, num: RequestNum) -> bool {
        self.shard(conn).cancelled.contains(&(conn, num))
    }

    /// Record an ordered CloseConnection.
    pub fn note_closed(&mut self, conn: ConnectionId) {
        self.shard_mut(conn).closed.insert(conn);
    }

    /// Has an ordered CloseConnection been delivered for `conn`?
    pub fn is_closed(&self, conn: ConnectionId) -> bool {
        self.shard(conn).closed.contains(&conn)
    }

    // ---- latency telemetry ------------------------------------------------

    /// Start recording invocation-to-completion latency per connection.
    /// Purely observational: enabling it changes no wire behaviour.
    pub fn enable_latency(&mut self) {
        self.lat_enabled = true;
    }

    /// Is latency telemetry on?
    pub fn latency_enabled(&self) -> bool {
        self.lat_enabled
    }

    /// Note an invocation's start time (no-op unless telemetry is on).
    pub fn note_invocation_start(&mut self, conn: ConnectionId, num: RequestNum, now: SimTime) {
        if !self.lat_enabled {
            return;
        }
        let s = self.shard_mut(conn);
        if s.lat_pending.len() < LAT_PENDING_CAP {
            s.lat_pending.insert((conn, num), now);
        }
    }

    /// Record a completion against its start time, if tracked.
    pub fn record_completion(&mut self, conn: ConnectionId, num: RequestNum, now: SimTime) {
        if !self.lat_enabled {
            return;
        }
        let s = self.shard_mut(conn);
        if let Some(t0) = s.lat_pending.remove(&(conn, num)) {
            s.lat_hist
                .entry(conn)
                .or_default()
                .record(now.saturating_since(t0).as_micros());
        }
    }

    /// Snapshot of the request-latency histogram for one connection, if
    /// telemetry is on and the connection completed anything.
    pub fn latency_snapshot(&self, conn: ConnectionId) -> Option<HistogramSnapshot> {
        self.shard(conn).lat_hist.get(&conn).map(|h| h.snapshot())
    }

    /// All per-connection request-latency snapshots recorded so far.
    pub fn latency_snapshots(
        &self,
    ) -> impl Iterator<Item = (ConnectionId, HistogramSnapshot)> + '_ {
        self.shards
            .iter()
            .flat_map(|s| s.lat_hist.iter().map(|(c, h)| (*c, h.snapshot())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmp_core::ObjectGroupId;
    use proptest::prelude::*;

    fn conn(a: u32, b: u32) -> ConnectionId {
        ConnectionId::new(ObjectGroupId::new(1, a), ObjectGroupId::new(2, b))
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardSet::with_shards(1).shard_count(), 1);
        assert_eq!(ShardSet::with_shards(3).shard_count(), 4);
        assert_eq!(ShardSet::with_shards(16).shard_count(), 16);
        assert_eq!(ShardSet::with_shards(17).shard_count(), 32);
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let s = ShardSet::new();
        for a in 0..64 {
            let c = conn(a, a + 1);
            let i = s.shard_index(c);
            assert!(i < s.shard_count());
            assert_eq!(i, s.shard_index(c), "same connection, same shard");
        }
    }

    #[test]
    fn connections_spread_over_shards() {
        let s = ShardSet::new();
        let hit: std::collections::BTreeSet<usize> =
            (0..256).map(|a| s.shard_index(conn(a, 1))).collect();
        assert!(
            hit.len() >= s.shard_count() / 2,
            "256 connections hit ≥ half the {} shards, got {}",
            s.shard_count(),
            hit.len()
        );
    }

    #[test]
    fn numbering_is_per_connection() {
        let mut s = ShardSet::new();
        assert_eq!(s.alloc_request(conn(1, 2)), RequestNum(1));
        assert_eq!(s.alloc_request(conn(1, 2)), RequestNum(2));
        assert_eq!(s.alloc_request(conn(3, 4)), RequestNum(1));
    }

    /// Unsharded reference model: the exact pre-shard `OrbEndpoint` state —
    /// one detector pair, one numbering map, one pending set.
    #[derive(Default)]
    struct Reference {
        next_request: BTreeMap<ConnectionId, u64>,
        executed: DuplicateDetector,
        replied: DuplicateDetector,
        pending: BTreeSet<(ConnectionId, RequestNum)>,
        cancelled: BTreeSet<(ConnectionId, RequestNum)>,
        closed: BTreeSet<ConnectionId>,
    }

    #[derive(Debug, Clone)]
    enum Op {
        Alloc(u32),
        Execute(u32, u64),
        Reply(u32, u64),
        Pend(u32, u64),
        Unpend(u32, u64),
        Cancel(u32, u64),
        IsCancelled(u32, u64),
        Close(u32),
        IsClosed(u32),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Few connections and small numbers force collisions both within
        // and across shards.
        let c = 0u32..12;
        let n = 1u64..20;
        prop_oneof![
            c.clone().prop_map(Op::Alloc),
            (c.clone(), n.clone()).prop_map(|(a, b)| Op::Execute(a, b)),
            (c.clone(), n.clone()).prop_map(|(a, b)| Op::Reply(a, b)),
            (c.clone(), n.clone()).prop_map(|(a, b)| Op::Pend(a, b)),
            (c.clone(), n.clone()).prop_map(|(a, b)| Op::Unpend(a, b)),
            (c.clone(), n.clone()).prop_map(|(a, b)| Op::Cancel(a, b)),
            (c.clone(), n.clone()).prop_map(|(a, b)| Op::IsCancelled(a, b)),
            c.clone().prop_map(Op::Close),
            c.prop_map(Op::IsClosed),
        ]
    }

    proptest! {
        /// The sharded engine makes byte-identical decisions to the
        /// unsharded reference across arbitrary connection/request
        /// interleavings — sharding is a pure index, never a semantic.
        #[test]
        fn prop_sharded_matches_unsharded(
            ops in proptest::collection::vec(op_strategy(), 0..400),
            shards in 1usize..9,
        ) {
            let mut s = ShardSet::with_shards(shards);
            let mut r = Reference::default();
            for op in &ops {
                match *op {
                    Op::Alloc(a) => {
                        let c = conn(a, a);
                        let n = r.next_request.entry(c).or_insert(0);
                        *n += 1;
                        prop_assert_eq!(s.alloc_request(c), RequestNum(*n));
                    }
                    Op::Execute(a, num) => {
                        let c = conn(a, a);
                        prop_assert_eq!(
                            s.first_execution(c, RequestNum(num)),
                            r.executed.first_sighting(c, RequestNum(num))
                        );
                    }
                    Op::Reply(a, num) => {
                        let c = conn(a, a);
                        prop_assert_eq!(
                            s.first_reply(c, RequestNum(num)),
                            r.replied.first_sighting(c, RequestNum(num))
                        );
                    }
                    Op::Pend(a, num) => {
                        let c = conn(a, a);
                        s.note_pending(c, RequestNum(num));
                        r.pending.insert((c, RequestNum(num)));
                    }
                    Op::Unpend(a, num) => {
                        let c = conn(a, a);
                        prop_assert_eq!(
                            s.remove_pending(c, RequestNum(num)),
                            r.pending.remove(&(c, RequestNum(num)))
                        );
                    }
                    Op::Cancel(a, num) => {
                        let c = conn(a, a);
                        s.note_cancelled(c, RequestNum(num));
                        r.cancelled.insert((c, RequestNum(num)));
                    }
                    Op::IsCancelled(a, num) => {
                        let c = conn(a, a);
                        prop_assert_eq!(
                            s.is_cancelled(c, RequestNum(num)),
                            r.cancelled.contains(&(c, RequestNum(num)))
                        );
                    }
                    Op::Close(a) => {
                        let c = conn(a, a);
                        s.note_closed(c);
                        r.pending.retain(|(pc, _)| *pc != c);
                        s.clear_conn_pending(c);
                        r.closed.insert(c);
                    }
                    Op::IsClosed(a) => {
                        let c = conn(a, a);
                        prop_assert_eq!(s.is_closed(c), r.closed.contains(&c));
                    }
                }
                prop_assert_eq!(s.pending_count(), r.pending.len());
            }
            prop_assert_eq!(
                s.suppression_counts(),
                (r.executed.suppressed, r.replied.suppressed)
            );
        }
    }
}
