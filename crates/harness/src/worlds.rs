//! Pre-wired simulation worlds the experiments sweep over.

use bytes::Bytes;
use ftmp_baselines::TotalOrderNode;
use ftmp_core::pgmp::ServerRegistration;
use ftmp_core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    RequestNum, SendOutcome, SimProcessor,
};
use ftmp_net::{McastAddr, NodeId, SimConfig, SimDuration, SimNet, SimNode, SimTime};
use ftmp_orb::{OrbEndpoint, OrbNode};
use std::collections::HashMap;

/// The connection id the plain-multicast worlds bind statically.
pub fn world_conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

/// Results drained from a world: per-node delivery sequences and
/// send→deliver latency samples (µs) across all receivers.
#[derive(Debug, Default)]
pub struct RunResults {
    /// Per node: `(order key…, source, local seq)` in delivery order.
    pub sequences: Vec<Vec<(u64, u32, u64)>>,
    /// One sample per (message, receiver) pair.
    pub latencies_us: Vec<u64>,
}

impl RunResults {
    /// True when every node delivered the identical sequence.
    pub fn all_agree(&self) -> bool {
        self.sequences.windows(2).all(|w| w[0] == w[1])
    }

    /// Messages delivered at node 0.
    pub fn delivered(&self) -> usize {
        self.sequences.first().map_or(0, Vec::len)
    }
}

/// An n-member FTMP processor group with a statically bound connection.
pub struct FtmpWorld {
    /// The simulator.
    pub net: SimNet<SimProcessor>,
    /// Member count.
    pub n: u32,
    group: GroupId,
    addr: McastAddr,
    send_times: HashMap<(u32, u64), u64>,
    next_req: u64,
}

impl FtmpWorld {
    /// Build the world: group `G1` at address 100 with members `1..=n`.
    pub fn new(n: u32, sim_cfg: SimConfig, proto: ProtocolConfig, clock: ClockMode) -> Self {
        let group = GroupId(1);
        let addr = McastAddr(100);
        let members: Vec<ProcessorId> = (1..=n).map(ProcessorId).collect();
        let mut net = SimNet::new(sim_cfg);
        net.set_classifier(ftmp_core::wire::classify);
        net.set_message_counter(ftmp_core::wire::message_count);
        for id in 1..=n {
            let mut engine = Processor::new(ProcessorId(id), proto.clone(), clock);
            engine.create_group(SimTime::ZERO, group, addr, members.clone());
            engine.bind_connection(world_conn(), group);
            net.add_node(id, SimProcessor::new(engine));
            net.with_node(id, |node, now, out| node.pump_at(now, out));
        }
        FtmpWorld {
            net,
            n,
            group,
            addr,
            send_times: HashMap::new(),
            next_req: 0,
        }
    }

    /// Wrap an externally assembled simulator (custom per-node clock modes
    /// or configs); the nodes must already share `group` with the world
    /// connection bound, on the standard world multicast address (100).
    pub fn from_parts(net: SimNet<SimProcessor>, n: u32, group: GroupId) -> Self {
        FtmpWorld {
            net,
            n,
            group,
            addr: McastAddr(100),
            send_times: HashMap::new(),
            next_req: 0,
        }
    }

    /// The group id.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Multicast one Regular message of `payload_len` bytes from `from`.
    pub fn send(&mut self, from: u32, payload_len: usize) {
        self.send_on(world_conn(), from, payload_len);
    }

    /// Multicast one Regular message on a specific bound connection.
    /// Request numbers stay monotone over all connections of the world,
    /// matching §4's allocation rule.
    pub fn send_on(&mut self, conn: ConnectionId, from: u32, payload_len: usize) {
        self.next_req += 1;
        let req = RequestNum(self.next_req);
        let payload = Bytes::from(vec![0xAB; payload_len]);
        let now_us = self.net.now().as_micros();
        let sent = self.net.with_node(from, move |node, now, out| {
            let r = node.engine_mut().multicast_request(now, conn, req, payload);
            node.pump_at(now, out);
            r
        });
        if let Some(Ok(SendOutcome::Sent { seq, .. })) = sent {
            self.send_times.insert((from, seq.0), now_us);
        }
    }

    /// Bind an additional logical connection to the world's group on every
    /// live member (§7: several logical connections share the same
    /// processor group and multicast address).
    pub fn bind_conn(&mut self, conn: ConnectionId) {
        let group = self.group;
        for id in 1..=self.n {
            if self.net.is_crashed(id) {
                continue;
            }
            self.net.with_node(id, move |node, _, _| {
                node.engine_mut().bind_connection(conn, group);
            });
        }
    }

    /// Enable protocol telemetry (latency histograms, counters) on every
    /// member.
    pub fn enable_telemetry(&mut self) {
        for id in 1..=self.n {
            self.net
                .with_node(id, |node, _, _| node.engine_mut().enable_telemetry());
        }
    }

    /// Advance virtual time.
    pub fn run_ms(&mut self, ms: u64) {
        self.net.run_for(SimDuration::from_millis(ms));
    }

    /// Advance virtual time by microseconds.
    pub fn run_us(&mut self, us: u64) {
        self.net.run_for(SimDuration::from_micros(us));
    }

    /// Drain deliveries from every live node into [`RunResults`].
    pub fn collect(&mut self) -> RunResults {
        let mut res = RunResults::default();
        for id in 1..=self.n {
            if self.net.is_crashed(id) {
                continue;
            }
            let Some(node) = self.net.node_mut(id) else {
                continue;
            };
            let mut seq = Vec::new();
            for (at, d) in node.take_deliveries() {
                seq.push((d.ts.0, d.source.0, d.seq.0));
                if let Some(sent) = self.send_times.get(&(d.source.0, d.seq.0)) {
                    res.latencies_us.push(at.as_micros().saturating_sub(*sent));
                }
            }
            res.sequences.push(seq);
        }
        res
    }

    /// Attach a conformance [`Checker`](ftmp_check::Checker) with the
    /// standard oracle suite to every member; the returned handle shares
    /// state with the running world, so call
    /// [`finish`](ftmp_check::Checker::finish) /
    /// [`assert_clean`](ftmp_check::Checker::assert_clean) once the
    /// workload settles.
    pub fn attach_checker(&mut self) -> ftmp_check::Checker {
        let founders: Vec<ProcessorId> = (1..=self.n).map(ProcessorId).collect();
        let checker = ftmp_check::Checker::new(self.group, &founders);
        checker.attach_all(&mut self.net, 1..=self.n);
        checker
    }

    /// Attach a durable delivery log (`ftmp-store`, DESIGN.md §12) to
    /// member `id`: every ordered delivery and installed view persists to
    /// `dir` from this point on. Wire traffic is unaffected.
    pub fn enable_durable_log(&mut self, id: u32, dir: &std::path::Path) {
        let log = ftmp_store::DurableLog::open(dir, ftmp_store::LogConfig::default())
            .expect("open durable log");
        self.net.with_node(id, move |node, _, _| {
            node.engine_mut().set_delivery_log(Box::new(log));
        });
    }

    /// Crash a member: it stops ticking and receives nothing until revived.
    pub fn crash(&mut self, id: u32) {
        self.net.crash(id);
    }

    /// Restart a crashed member from its durable log directory
    /// (crash→restart→rejoin, DESIGN.md §12). Recovers the log — torn tail
    /// truncated, corruption quarantined — re-derives the delivered
    /// horizon, builds a fresh engine under the same processor id that
    /// expects to be re-added (§7.1 join), reattaches a durable log on the
    /// same directory (new segment), revives the node and has `sponsor`
    /// re-add it. Returns the recovered state so the caller can drive
    /// delta state transfer from the horizon. The §7.1 add still needs
    /// simulated time to complete — run the world afterwards.
    pub fn restart_from_log(
        &mut self,
        id: u32,
        dir: &std::path::Path,
        sponsor: u32,
        proto: ProtocolConfig,
        clock: ClockMode,
    ) -> ftmp_store::RecoveredState {
        let recovered = ftmp_store::recover(dir).expect("log recovery");
        let state = ftmp_store::RecoveredState::from_records(&recovered.records);
        let mut engine = Processor::new(ProcessorId(id), proto, clock);
        engine.expect_join(self.group, self.addr);
        engine.bind_connection(world_conn(), self.group);
        let log = ftmp_store::DurableLog::open(dir, ftmp_store::LogConfig::default())
            .expect("reopen durable log");
        engine.set_delivery_log(Box::new(log));
        self.net.revive(id, SimProcessor::new(engine));
        self.net
            .with_node(id, |node, now, out| node.pump_at(now, out));
        let group = self.group;
        self.net.with_node(sponsor, move |node, now, out| {
            node.engine_mut().add_processor(now, group, ProcessorId(id));
            node.pump_at(now, out);
        });
        state
    }

    /// The member ids still alive (not crashed) in this world.
    pub fn live(&self) -> Vec<NodeId> {
        (1..=self.n)
            .filter(|&id| !self.net.is_crashed(id))
            .collect()
    }

    /// Aggregate the per-layer counters (RMP/ROMP/PGMP) across all live
    /// members; counts sum, high-water marks max.
    pub fn layer_totals(&self) -> ftmp_core::processor::LayerCounters {
        let mut total = ftmp_core::processor::LayerCounters::default();
        for (_, node) in self.net.nodes() {
            total.merge(&node.engine().layer_totals());
        }
        total
    }

    /// Aggregate protocol stats across members: (nacks, retransmissions,
    /// duplicates).
    pub fn recovery_stats(&self) -> (u64, u64, u64) {
        let mut nacks = 0;
        let mut retrans = 0;
        let mut dups = 0;
        for (_, node) in self.net.nodes() {
            let s = node.engine().stats();
            nacks += s.nacks_sent;
            retrans += s.retransmissions_sent;
            dups += s.duplicates;
        }
        (nacks, retrans, dups)
    }
}

/// A baseline total-order world, generic over the engine.
pub struct BaselineWorld<N: SimNode + TotalOrderNode> {
    /// The simulator.
    pub net: SimNet<N>,
    /// Member count.
    pub n: u32,
    send_times: HashMap<(u32, u64), u64>,
}

impl<N: SimNode + TotalOrderNode> BaselineWorld<N> {
    /// Build with a per-node constructor `(id, members) -> engine`; every
    /// node subscribes to `addr`.
    pub fn new_with(
        n: u32,
        sim_cfg: SimConfig,
        addr: McastAddr,
        make: impl Fn(NodeId, Vec<NodeId>) -> N,
    ) -> Self {
        let members: Vec<NodeId> = (1..=n).collect();
        let mut net = SimNet::new(sim_cfg);
        for id in 1..=n {
            net.add_node(id, make(id, members.clone()));
            net.subscribe(id, addr);
        }
        BaselineWorld {
            net,
            n,
            send_times: HashMap::new(),
        }
    }

    /// Submit a payload at `from`.
    pub fn submit(&mut self, from: u32, payload_len: usize) {
        let now_us = self.net.now().as_micros();
        let payload = Bytes::from(vec![0xCD; payload_len]);
        let local = self
            .net
            .with_node(from, move |node, _, _| node.submit(payload))
            .expect("node exists");
        self.send_times.insert((from, local), now_us);
    }

    /// Advance virtual time.
    pub fn run_ms(&mut self, ms: u64) {
        self.net.run_for(SimDuration::from_millis(ms));
    }

    /// Drain results. Baseline engines do not timestamp deliveries, so the
    /// latency sample uses the drain sweep's granularity: call this often
    /// (the experiments drain every millisecond).
    pub fn collect(&mut self) -> RunResults {
        let now_us = self.net.now().as_micros();
        let mut res = RunResults::default();
        for id in 1..=self.n {
            let Some(node) = self.net.node_mut(id) else {
                continue;
            };
            let mut seq = Vec::new();
            for d in node.take_delivered() {
                seq.push((d.global_seq, d.source, d.local_seq));
                if let Some(sent) = self.send_times.get(&(d.source, d.local_seq)) {
                    res.latencies_us.push(now_us.saturating_sub(*sent));
                }
            }
            res.sequences.push(seq);
        }
        res
    }

    /// Run for `total_ms`, draining every `drain_every_ms` to keep latency
    /// sampling granularity tight; merges all drains.
    pub fn run_collect(&mut self, total_ms: u64, drain_every_ms: u64) -> RunResults {
        let mut merged = RunResults {
            sequences: vec![Vec::new(); self.n as usize],
            latencies_us: Vec::new(),
        };
        let steps = total_ms / drain_every_ms.max(1);
        for _ in 0..steps {
            self.run_ms(drain_every_ms.max(1));
            let part = self.collect();
            for (i, s) in part.sequences.into_iter().enumerate() {
                merged.sequences[i].extend(s);
            }
            merged.latencies_us.extend(part.latencies_us);
        }
        merged
    }
}

/// A replicated-CORBA world: k client processors, m server replicas hosting
/// a servant, connected through the full ConnectRequest/Connect handshake.
pub struct OrbWorld {
    /// The simulator.
    pub net: SimNet<OrbNode>,
    /// Client processor ids.
    pub clients: Vec<u32>,
    /// Server processor ids.
    pub servers: Vec<u32>,
    conn: ConnectionId,
    invoke_times: HashMap<u64, u64>,
}

/// Domain multicast address used by [`OrbWorld`].
pub const ORB_DOMAIN_ADDR: McastAddr = McastAddr(500);
/// Connection processor-group address used by [`OrbWorld`].
pub const ORB_GROUP_ADDR: McastAddr = McastAddr(600);

impl OrbWorld {
    /// Connection id used by the world.
    pub fn conn(&self) -> ConnectionId {
        self.conn
    }

    /// Build `k` clients (ids `1..=k`) and `m` servers (ids `k+1..=k+m`),
    /// each server hosting a servant built by `make_servant`, and establish
    /// the connection. Panics if the handshake does not complete within a
    /// simulated second.
    pub fn new(
        k: u32,
        m: u32,
        sim_cfg: SimConfig,
        proto: ProtocolConfig,
        make_servant: impl Fn() -> Box<dyn ftmp_orb::Servant>,
    ) -> Self {
        let og_client = ObjectGroupId::new(1, 1);
        let og_server = ObjectGroupId::new(2, 7);
        let conn = ConnectionId::new(og_client, og_server);
        let clients: Vec<u32> = (1..=k).collect();
        let servers: Vec<u32> = (k + 1..=k + m).collect();
        let server_pids: Vec<ProcessorId> = servers.iter().map(|&i| ProcessorId(i)).collect();
        let client_pids: Vec<ProcessorId> = clients.iter().map(|&i| ProcessorId(i)).collect();
        let mut net = SimNet::new(sim_cfg);
        net.set_classifier(ftmp_core::wire::classify);
        for id in 1..=(k + m) {
            let mut proc = Processor::new(ProcessorId(id), proto.clone(), ClockMode::Lamport);
            let mut orb = OrbEndpoint::new();
            if clients.contains(&id) {
                orb.register_client(conn);
            } else {
                orb.host_replica(og_server, b"obj".to_vec(), make_servant());
                proc.register_server(
                    og_server,
                    ServerRegistration {
                        processors: server_pids.clone(),
                        pool: vec![(GroupId(10), ORB_GROUP_ADDR)],
                    },
                    ORB_DOMAIN_ADDR,
                );
            }
            net.add_node(id, OrbNode::new(proc, orb));
            net.with_node(id, |n, now, out| n.pump(now, out));
        }
        for &id in &clients {
            let cp = client_pids.clone();
            net.with_node(id, move |n, now, out| {
                n.proc_mut().open_connection(now, conn, cp, ORB_DOMAIN_ADDR);
                n.pump(now, out);
            });
        }
        let mut world = OrbWorld {
            net,
            clients,
            servers,
            conn,
            invoke_times: HashMap::new(),
        };
        for _ in 0..400 {
            world.net.run_for(SimDuration::from_millis(5));
            if world.connected() {
                return world;
            }
        }
        panic!("OrbWorld: connection establishment did not complete");
    }

    fn connected(&self) -> bool {
        self.clients.iter().chain(self.servers.iter()).all(|&id| {
            self.net
                .node(id)
                .is_some_and(|n| n.proc().connection_group(self.conn).is_some())
        })
    }

    /// Every client replica issues the same invocation (active replication).
    /// Returns the request number.
    pub fn invoke_all(&mut self, operation: &str, arg: i64) -> u64 {
        let now_us = self.net.now().as_micros();
        let conn = self.conn;
        let mut num = 0;
        for &id in &self.clients.clone() {
            let op = operation.to_string();
            let n = self
                .net
                .with_node(id, move |node, now, out| {
                    node.invoke(
                        now,
                        conn,
                        b"obj",
                        &op,
                        &ftmp_orb::servant::encode_i64_arg(arg),
                        out,
                    )
                })
                .expect("client exists");
            num = n.0;
        }
        self.invoke_times.insert(num, now_us);
        num
    }

    /// Advance virtual time.
    pub fn run_ms(&mut self, ms: u64) {
        self.net.run_for(SimDuration::from_millis(ms));
    }

    /// Drain completions at the first client; returns (completed request
    /// numbers, RTT latency samples µs sampled at drain granularity).
    pub fn drain_completions(&mut self) -> (Vec<u64>, Vec<u64>) {
        let now_us = self.net.now().as_micros();
        let id = self.clients[0];
        let mut nums = Vec::new();
        let mut lats = Vec::new();
        if let Some(node) = self.net.node_mut(id) {
            for c in node.take_completions() {
                nums.push(c.request_num.0);
                if let Some(t) = self.invoke_times.get(&c.request_num.0) {
                    lats.push(now_us.saturating_sub(*t));
                }
            }
        }
        (nums, lats)
    }

    /// Total duplicate requests suppressed across the server replicas.
    pub fn server_suppressed(&self) -> u64 {
        self.servers
            .iter()
            .map(|&id| {
                self.net
                    .node(id)
                    .map_or(0, |n| n.orb().suppression_counts().0)
            })
            .sum()
    }

    /// Total duplicate replies suppressed across the client replicas.
    pub fn client_suppressed(&self) -> u64 {
        self.clients
            .iter()
            .map(|&id| {
                self.net
                    .node(id)
                    .map_or(0, |n| n.orb().suppression_counts().1)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftmp_baselines::sequencer::{SequencerConfig, SequencerNode};

    #[test]
    fn ftmp_world_round_trip() {
        let mut w = FtmpWorld::new(
            3,
            SimConfig::with_seed(1),
            ProtocolConfig::with_seed(1),
            ClockMode::Lamport,
        );
        w.send(1, 64);
        w.send(2, 64);
        w.run_ms(100);
        let res = w.collect();
        assert!(res.all_agree());
        assert_eq!(res.delivered(), 2);
        assert!(!res.latencies_us.is_empty());
        assert!(res.latencies_us.iter().all(|&l| l < 100_000));
    }

    #[test]
    fn baseline_world_round_trip() {
        let addr = McastAddr(1);
        let mut w = BaselineWorld::new_with(3, SimConfig::with_seed(2), addr, |id, members| {
            SequencerNode::new(id, SequencerConfig::new(addr, members))
        });
        w.submit(1, 64);
        w.submit(3, 64);
        let res = w.run_collect(100, 1);
        assert_eq!(res.sequences[0].len(), 2);
        assert!(res.all_agree());
    }

    #[test]
    fn orb_world_invocation() {
        let mut w = OrbWorld::new(
            2,
            3,
            SimConfig::with_seed(3),
            ProtocolConfig::with_seed(3),
            || Box::new(ftmp_orb::Counter::default()),
        );
        w.invoke_all("add", 5);
        w.run_ms(200);
        let (nums, lats) = w.drain_completions();
        assert_eq!(nums, vec![1]);
        assert_eq!(lats.len(), 1);
        assert!(w.server_suppressed() >= 3, "one duplicate per server");
    }
}
