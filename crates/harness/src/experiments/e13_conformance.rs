//! E13 — protocol-conformance sweep: violations per 10 000 executions
//! (DESIGN.md §9).
//!
//! The `ftmp-check` schedule-sweep driver runs the seeded workload under
//! every fault scenario in the matrix — lossless, i.i.d. loss, burst loss,
//! partition + heal, crash, join/leave churn, latency spike — with all
//! seven paper-property oracles attached to every processor. Each
//! (scenario, seed) cell yields a verdict; the headline metric is
//! violations per 10 000 executions, expected to be **zero**: the oracles'
//! sensitivity is established separately by the negative-path fixtures in
//! `ftmp-check`, so a quiet sweep is evidence of conformance, not of a
//! blind checker.
//!
//! The seed budget follows the `CHAOS_SEEDS` convention: set
//! `CONFORMANCE_SEEDS` to widen the per-scenario seed range (CI runs a
//! larger budget than the default developer loop).

use crate::report::Table;
use ftmp_check::sweep::{run_sweep, seed_budget, Scenario, SweepConfig};

/// The fixed sweep shape E13 reports (seeds scale via `CONFORMANCE_SEEDS`).
fn config() -> SweepConfig {
    SweepConfig {
        base_seed: 0xE13,
        seeds_per_scenario: seed_budget(3),
        steps: 60,
        trace_capacity: 8192,
        scenarios: Scenario::ALL.to_vec(),
    }
}

/// Run E13.
pub fn run() -> Vec<Table> {
    let cfg = config();
    let report = run_sweep(&cfg);
    let mut t = Table::new(
        "e13",
        "Conformance sweep: oracle violations per 10k executions across the fault matrix",
        &[
            "scenario",
            "seeds",
            "executions",
            "observations",
            "delivered",
            "violations",
            "verdict",
        ],
    );
    for scenario in &cfg.scenarios {
        let cells: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.scenario == scenario.name())
            .collect();
        let violations: u64 = cells.iter().map(|c| c.violations).sum();
        t.row(vec![
            scenario.name().into(),
            cfg.seeds_per_scenario.to_string(),
            cells.len().to_string(),
            cells
                .iter()
                .map(|c| c.observations)
                .sum::<u64>()
                .to_string(),
            cells.iter().map(|c| c.delivered).sum::<u64>().to_string(),
            violations.to_string(),
            if violations == 0 { "PASS" } else { "FAIL" }.into(),
        ]);
    }
    t.row(vec![
        "TOTAL".into(),
        cfg.seeds_per_scenario.to_string(),
        report.executions().to_string(),
        report.observations().to_string(),
        report.delivered().to_string(),
        report.violations().to_string(),
        format!("{:.3} viol/10k", report.violations_per_10k()),
    ]);
    for cell in report.failures() {
        t.note(format!(
            "counterexample ({} seed {}):\n{}",
            cell.scenario,
            cell.seed,
            cell.counterexample.as_deref().unwrap_or("(none recorded)")
        ));
    }
    t.note("oracles: reliability, source-order, causal-order, total-order, virtual-synchrony, duplicate-suppression, reclamation-safety — all attached online, zero wire perturbation (golden trace-hash pinned in ftmp-check)");
    t.note("seed budget scales with CONFORMANCE_SEEDS (default 3 per scenario); negative-path fixtures in ftmp-check prove each oracle trips on its bug class");
    vec![t]
}

#[cfg(test)]
mod tests {
    /// The ISSUE acceptance criterion: the full fault matrix sweeps clean
    /// at the default seed budget.
    #[test]
    fn e13_sweep_is_clean() {
        let tables = super::run();
        let rendered = tables[0].render();
        assert!(!rendered.contains("FAIL"), "{rendered}");
        assert!(rendered.contains("0.000 viol/10k"), "{rendered}");
    }
}
