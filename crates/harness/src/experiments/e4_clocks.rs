//! E4 — Lamport clocks vs synchronized clocks (§2, §6).
//!
//! "Synchronized clocks can be used to achieve better performance." The
//! sweep compares pure Lamport timestamps against simulated synchronized
//! clocks with increasing skew, under an asymmetric workload (one fast
//! sender, one slow sender) where timestamp quality affects how far the
//! ordering queue runs ahead of the horizons.

use crate::metrics::LatencyStats;
use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_net::{SimConfig, SimDuration};

fn run_mode(mode: ClockMode, skews: &[i64]) -> (LatencyStats, bool) {
    let proto = ProtocolConfig::with_seed(0xE4).heartbeat(SimDuration::from_millis(5));
    let mut w = FtmpWorld::new(4, SimConfig::with_seed(0xE4), proto.clone(), mode);
    // Apply per-node skew in synchronized mode by rebuilding node clocks:
    // the world constructor uses one mode for all; emulate per-node skew by
    // selecting the skew for node i from `skews` (cycled).
    if let ClockMode::Synchronized { .. } = mode {
        for id in 1..=4u32 {
            let skew = skews[(id as usize - 1) % skews.len()];
            let _ = skew; // per-node skew is configured at construction below
        }
        // Rebuild with per-node modes.
        let mut w2 = build_skewed(proto, skews);
        run_load(&mut w2);
        return finish(w2);
    }
    run_load(&mut w);
    finish(w)
}

fn build_skewed(proto: ProtocolConfig, skews: &[i64]) -> FtmpWorld {
    use ftmp_core::{GroupId, Processor, ProcessorId, SimProcessor};
    use ftmp_net::{McastAddr, SimNet, SimTime};
    let group = GroupId(1);
    let addr = McastAddr(100);
    let members: Vec<ProcessorId> = (1..=4).map(ProcessorId).collect();
    let mut net = SimNet::new(SimConfig::with_seed(0xE4));
    net.set_classifier(ftmp_core::wire::classify);
    for id in 1..=4u32 {
        let mode = ClockMode::Synchronized {
            skew_us: skews[(id as usize - 1) % skews.len()],
        };
        let mut engine = Processor::new(ProcessorId(id), proto.clone(), mode);
        engine.create_group(SimTime::ZERO, group, addr, members.clone());
        engine.bind_connection(crate::worlds::world_conn(), group);
        net.add_node(id, SimProcessor::new(engine));
        net.with_node(id, |node, now, out| node.pump_at(now, out));
    }
    FtmpWorld::from_parts(net, 4, group)
}

fn run_load(w: &mut FtmpWorld) {
    // Asymmetric: node 1 sends every 2 ms, node 2 every 40 ms.
    for k in 0..100u64 {
        w.send(1, 128);
        if k % 20 == 0 {
            w.send(2, 128);
        }
        w.run_ms(2);
    }
    w.run_ms(400);
}

fn finish(mut w: FtmpWorld) -> (LatencyStats, bool) {
    let res = w.collect();
    (
        LatencyStats::from_samples(&res.latencies_us),
        res.all_agree() && res.delivered() == 105,
    )
}

/// Run E4.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e4",
        "Timestamp source: Lamport vs synchronized clocks (asymmetric senders)",
        &["clock mode", "mean latency", "p50", "p99", "order agrees"],
    );
    let cases: Vec<(String, ClockMode, Vec<i64>)> = vec![
        ("Lamport".into(), ClockMode::Lamport, vec![0]),
        (
            "synchronized, 0 skew".into(),
            ClockMode::Synchronized { skew_us: 0 },
            vec![0, 0, 0, 0],
        ),
        (
            "synchronized, +/-250 us skew".into(),
            ClockMode::Synchronized { skew_us: 0 },
            vec![250, -250, 125, -125],
        ),
        (
            "synchronized, +/-2 ms skew".into(),
            ClockMode::Synchronized { skew_us: 0 },
            vec![2_000, -2_000, 1_000, -1_000],
        ),
    ];
    for (label, mode, skews) in cases {
        let (stats, ok) = run_mode(mode, &skews);
        t.row(vec![
            label,
            format!("{} ms", stats.mean_ms()),
            format!("{:.2} ms", stats.p50_us as f64 / 1000.0),
            format!("{:.2} ms", stats.p99_us as f64 / 1000.0),
            if ok { "PASS".into() } else { "FAIL".into() },
        ]);
    }
    t.note("correctness is skew-independent: the Lamport receive rule floors every clock at the highest timestamp observed, so skewed clocks degrade latency, never order");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e4_order_agreement_under_all_clock_modes() {
        let tables = super::run();
        let rendered = tables[0].render();
        assert!(!rendered.contains("FAIL"), "{rendered}");
    }
}
