//! E6 — buffer management by ack timestamps (§6).
//!
//! "The ROMP layer at a processor determines when the processor no longer
//! needs to retain a message in its buffer … ROMP then recovers the buffer
//! space." Retention is reclaimed once every member's reported ack
//! timestamp passes a message. This sweep samples retention-buffer
//! occupancy under load, varying the heartbeat interval (acks ride on
//! heartbeats when traffic is one-sided) and the loss rate (loss delays
//! stability).

use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_net::{LossModel, SimConfig, SimDuration};

struct Occupancy {
    peak_msgs: usize,
    peak_bytes: usize,
    final_msgs: usize,
    mean_msgs: f64,
}

fn run_one(hb_ms: u64, loss: f64) -> Occupancy {
    let proto = ProtocolConfig::with_seed(0xE6).heartbeat(SimDuration::from_millis(hb_ms));
    let sim = SimConfig::with_seed(0xE6).loss(if loss > 0.0 {
        LossModel::Iid { p: loss }
    } else {
        LossModel::None
    });
    let mut w = FtmpWorld::new(4, sim, proto, ClockMode::Lamport);
    let mut peak_msgs = 0usize;
    let mut peak_bytes = 0usize;
    let mut sum = 0usize;
    let mut samples = 0usize;
    // One-sided load: node 1 sends 200 messages; others only heartbeat.
    for _ in 0..200 {
        w.send(1, 256);
        w.run_ms(1);
        let m = w
            .net
            .node(1)
            .unwrap()
            .engine()
            .group_metrics(w.group())
            .unwrap();
        peak_msgs = peak_msgs.max(m.retention_msgs);
        peak_bytes = peak_bytes.max(m.retention_bytes);
        sum += m.retention_msgs;
        samples += 1;
    }
    // Quiesce: stability should reclaim (almost) everything.
    w.run_ms(2_000);
    let m = w
        .net
        .node(1)
        .unwrap()
        .engine()
        .group_metrics(w.group())
        .unwrap();
    Occupancy {
        peak_msgs,
        peak_bytes,
        final_msgs: m.retention_msgs,
        mean_msgs: sum as f64 / samples as f64,
    }
}

/// Run E6.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e6",
        "Retention-buffer occupancy under the ack-timestamp reclamation rule (200 msgs, 1 sender)",
        &[
            "hb interval",
            "loss",
            "peak msgs",
            "peak KiB",
            "mean msgs",
            "after quiesce",
        ],
    );
    for &hb in &[2u64, 10, 50] {
        for &loss in &[0.0, 0.05] {
            let o = run_one(hb, loss);
            t.row(vec![
                format!("{hb} ms"),
                format!("{:.0}%", loss * 100.0),
                o.peak_msgs.to_string(),
                format!("{:.1}", o.peak_bytes as f64 / 1024.0),
                format!("{:.1}", o.mean_msgs),
                o.final_msgs.to_string(),
            ]);
        }
    }
    t.note("faster heartbeats circulate acks sooner: stability advances, occupancy falls; loss stretches the tail because stability waits for the slowest member");
    t.note("'after quiesce' shows the rule converging — only the newest unstable messages remain");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e6_reclamation_works_and_tracks_heartbeats() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let peak = |i: usize| -> usize { rows[i][2].parse().unwrap() };
        let fin = |i: usize| -> usize { rows[i][5].parse().unwrap() };
        // Quiescence reclaims nearly everything at every setting.
        for i in 0..rows.len() {
            assert!(fin(i) <= peak(i));
            assert!(fin(i) < 20, "row {i}: residual {}", fin(i));
        }
        // Slower heartbeats (50 ms, no loss) hold more than fast (2 ms).
        assert!(
            peak(4) > peak(0),
            "50 ms hb peak {} should exceed 2 ms hb peak {}",
            peak(4),
            peak(0)
        );
    }
}
