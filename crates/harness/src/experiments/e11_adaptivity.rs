//! E11 — adaptive timers and ack-driven flow control under duress.
//!
//! Two stress scenarios the fixed-timer stack was never tuned for:
//!
//! * **Spike** — a scheduled [`LinkDegrade`] window multiplies the latency
//!   samples (amplifying jitter, a congestion signature) and drops extra
//!   packets on everything processor 4 sends. Nobody crashes, so every
//!   `FaultReport` is a *false conviction*. Fixed timers compare heartbeat
//!   gaps against a constant fail timeout and evict the healthy processor;
//!   [`TimerPolicy::Adaptive`] stretches the timeout to track the observed
//!   heartbeat-interarrival envelope and rides the spike out.
//! * **Overload** — processor 1 floods while a lossy window starves
//!   processor 4, stalling its ack timestamp so stability (§6) cannot
//!   advance and the sender's retention buffer grows without bound. With
//!   [`FlowControl`] enabled, the ROMP send window closes at the high-water
//!   mark, admission is refused (counted), and peak occupancy stays bounded.

use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::processor::ProtocolEvent;
use ftmp_core::{ClockMode, FlowControl, ProcessorId, ProtocolConfig, TimerPolicy};
use ftmp_net::{LinkDegrade, LinkSelector, SimConfig, SimDuration, SimTime};
use std::collections::BTreeSet;

/// The processor whose outbound links degrade in the spike scenario, and
/// whose inbound links starve in the overload scenario.
const VICTIM: u32 = 4;

struct SpikeOut {
    false_convictions: usize,
    delivered: usize,
    recovery_ms: Option<u64>,
}

/// One spike run: 1 s warmup, 1 s degrade window on the victim's outbound
/// links, then a settle period measuring how fast delivery catches up.
fn spike_run(policy: TimerPolicy, latency_factor: f64, extra_loss: f64) -> SpikeOut {
    const SENDS: usize = 100;
    let proto = ProtocolConfig::with_seed(0xE11)
        .fail_timeout_of(SimDuration::from_millis(25))
        .timer_policy(policy);
    let degrade = LinkDegrade {
        from: SimTime(1_000_000),
        until: SimTime(2_000_000),
        links: LinkSelector::From(vec![VICTIM]),
        latency_factor,
        extra_loss,
    };
    let sim = SimConfig::with_seed(0xE11).degrade(degrade);
    let mut w = FtmpWorld::new(4, sim, proto, ClockMode::Lamport);
    // Light steady load from P1 through warmup and spike: 1 send / 20 ms.
    for _ in 0..SENDS {
        w.send(1, 64);
        w.run_ms(20);
    }
    // Settle after the spike, polling until every always-member (1..=3)
    // has delivered the full send sequence.
    let spike_end_us = 2_000_000u64;
    let mut delivered = [0usize; 3];
    let mut recovery_ms = None;
    for _ in 0..400 {
        for id in 1..=3u32 {
            if let Some(node) = w.net.node_mut(id) {
                delivered[(id - 1) as usize] += node.take_deliveries().len();
            }
        }
        if delivered.iter().all(|&d| d >= SENDS) {
            let now_us = w.net.now().as_micros();
            recovery_ms = Some(now_us.saturating_sub(spike_end_us) / 1_000);
            break;
        }
        w.run_ms(5);
    }
    // A conviction with zero crashes is false by construction; count the
    // distinct convicted processors seen anywhere.
    let mut convicted: BTreeSet<ProcessorId> = BTreeSet::new();
    for id in 1..=4u32 {
        if let Some(node) = w.net.node_mut(id) {
            for (_, e) in node.take_events() {
                if let ProtocolEvent::FaultReport { processor, .. } = e {
                    convicted.insert(processor);
                }
            }
        }
    }
    SpikeOut {
        false_convictions: convicted.len(),
        delivered: delivered[0],
        recovery_ms,
    }
}

struct OverloadOut {
    attempted: usize,
    peak_buf: usize,
    refused: u64,
    bp_closes: u64,
    delivered: usize,
}

/// One overload run: P1 floods (1 send / 2 ms) while a lossy window starves
/// the victim's inbound links, stalling its ack timestamp.
fn overload_run(fc: bool) -> OverloadOut {
    let mut proto = ProtocolConfig::with_seed(0xE11B);
    if fc {
        proto = proto.flow_control(FlowControl::window(48, 16));
    }
    let degrade = LinkDegrade::lossy(
        SimTime(300_000),
        SimTime(2_300_000),
        LinkSelector::To(vec![VICTIM]),
        0.9,
    );
    let sim = SimConfig::with_seed(0xE11B).degrade(degrade);
    let mut w = FtmpWorld::new(4, sim, proto, ClockMode::Lamport);
    w.run_ms(100);
    let mut peak_buf = 0usize;
    let mut attempted = 0usize;
    for _ in 0..2_000 {
        w.send(1, 128);
        attempted += 1;
        w.run_ms(1);
        let m = w
            .net
            .node(1)
            .unwrap()
            .engine()
            .group_metrics(w.group())
            .unwrap();
        peak_buf = peak_buf.max(m.retention_msgs);
    }
    // Degrade ends at 2.3 s; let the victim NACK its way back and acks
    // circulate.
    w.run_ms(2_500);
    let stats = w.net.node(1).unwrap().engine().stats();
    let refused = stats.sends_refused;
    let bp_closes = stats.backpressure_closes;
    let delivered = w
        .net
        .node_mut(1)
        .unwrap()
        .take_deliveries()
        .iter()
        .filter(|(_, d)| d.source == ProcessorId(1))
        .count();
    OverloadOut {
        attempted,
        peak_buf,
        refused,
        bp_closes,
        delivered,
    }
}

/// Run E11.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e11",
        "Latency spikes and overload: fixed vs adaptive timers, flow control off vs on (4 members)",
        &[
            "scenario",
            "policy",
            "degrade",
            "false conv",
            "delivered",
            "recovery ms",
            "peak buf",
            "bp closes",
            "refused",
        ],
    );
    let spikes: &[(&str, f64, f64)] = &[
        ("lat x50", 50.0, 0.0),
        ("loss 40%", 1.0, 0.4),
        ("x50 + 40%", 50.0, 0.4),
    ];
    for &(label, factor, loss) in spikes {
        for policy in [TimerPolicy::Fixed, TimerPolicy::Adaptive] {
            let o = spike_run(policy, factor, loss);
            t.row(vec![
                "spike".into(),
                format!("{policy:?}").to_lowercase(),
                label.into(),
                o.false_convictions.to_string(),
                o.delivered.to_string(),
                o.recovery_ms.map_or("-".into(), |m| m.to_string()),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    }
    for fc in [false, true] {
        let o = overload_run(fc);
        t.row(vec![
            "overload".into(),
            if fc { "fc on" } else { "fc off" }.into(),
            "loss 90% to P4".into(),
            "0".into(),
            format!("{}/{}", o.delivered, o.attempted),
            "-".into(),
            o.peak_buf.to_string(),
            o.bp_closes.to_string(),
            o.refused.to_string(),
        ]);
    }
    t.note("nobody crashes in either scenario, so every FaultReport is a false conviction; adaptive timers stretch the fail timeout to the observed interarrival envelope (clamped at 8x) and stop evicting the healthy processor");
    t.note("overload: the victim's stalled ack timestamp blocks stability, so without flow control the sender's retention grows with the flood; with it the ROMP window closes at 48 held messages and admission is refused instead");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e11_adaptive_beats_fixed_and_flow_control_bounds_buffers() {
        let tables = super::run();
        let rows = &tables[0].rows;
        // Rows 0..6: spike sweep, (fixed, adaptive) per degrade setting.
        let mut fixed_conv = 0usize;
        let mut adaptive_conv = 0usize;
        for pair in rows[..6].chunks(2) {
            fixed_conv += pair[0][3].parse::<usize>().unwrap();
            adaptive_conv += pair[1][3].parse::<usize>().unwrap();
        }
        assert!(
            adaptive_conv < fixed_conv,
            "adaptive ({adaptive_conv}) must falsely convict less than fixed ({fixed_conv})"
        );
        assert_eq!(adaptive_conv, 0, "adaptive rides out every spike setting");
        // Rows 6..8: overload, fc off then fc on.
        let peak_off: usize = rows[6][6].parse().unwrap();
        let peak_on: usize = rows[7][6].parse().unwrap();
        assert!(
            peak_on < peak_off / 2,
            "flow control must bound occupancy (off {peak_off}, on {peak_on})"
        );
        assert!(rows[7][7].parse::<u64>().unwrap() >= 1, "window closed");
        assert!(rows[7][8].parse::<u64>().unwrap() > 0, "sends refused");
        assert_eq!(rows[6][8], "0", "no refusals without flow control");
    }
}
