//! E2 — scaling with group size: FTMP vs its §8 contemporaries.
//!
//! The paper positions FTMP against sequencer-based protocols (Amoeba and
//! kin) and Totem's token ring. This sweep runs the same all-senders
//! workload over each protocol at growing group sizes and reports delivery
//! latency and achieved throughput, exposing the structural differences:
//! FTMP's all-horizon wait, the sequencer's two-hop pipeline and central
//! bottleneck, and the ring's token-rotation latency growing with n.

use crate::metrics::LatencyStats;
use crate::report::Table;
use crate::worlds::{BaselineWorld, FtmpWorld};
use ftmp_baselines::sequencer::{SequencerConfig, SequencerNode};
use ftmp_baselines::token_ring::{RingConfig, TokenRingNode};
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_net::{McastAddr, SimConfig, SimDuration};

const PAYLOAD: usize = 128;
const ROUNDS: u64 = 30;
const GAP_MS: u64 = 5;

fn ftmp_run(n: u32) -> (LatencyStats, f64, bool) {
    let proto = ProtocolConfig::with_seed(0xE2).heartbeat(SimDuration::from_millis(2));
    let mut w = FtmpWorld::new(n, SimConfig::with_seed(0xE2), proto, ClockMode::Lamport);
    for _ in 0..ROUNDS {
        for id in 1..=n {
            w.send(id, PAYLOAD);
        }
        w.run_ms(GAP_MS);
    }
    w.run_ms(300);
    let res = w.collect();
    let stats = LatencyStats::from_samples(&res.latencies_us);
    let expected = (ROUNDS * n as u64) as usize;
    let tput = res.delivered() as f64 / ((ROUNDS * GAP_MS) as f64 / 1000.0);
    (stats, tput, res.delivered() == expected && res.all_agree())
}

fn seq_run(n: u32) -> (LatencyStats, f64, bool) {
    let addr = McastAddr(1);
    let mut w = BaselineWorld::new_with(n, SimConfig::with_seed(0xE2), addr, |id, members| {
        SequencerNode::new(id, SequencerConfig::new(addr, members))
    });
    let mut merged = Vec::new();
    let mut seqs: Vec<Vec<(u64, u32, u64)>> = vec![Vec::new(); n as usize];
    for _ in 0..ROUNDS {
        for id in 1..=n {
            w.submit(id, PAYLOAD);
        }
        let part = w.run_collect(GAP_MS, 1);
        merged.extend(part.latencies_us);
        for (i, s) in part.sequences.into_iter().enumerate() {
            seqs[i].extend(s);
        }
    }
    let part = w.run_collect(300, 1);
    merged.extend(part.latencies_us);
    for (i, s) in part.sequences.into_iter().enumerate() {
        seqs[i].extend(s);
    }
    let expected = (ROUNDS * n as u64) as usize;
    let agree = seqs.windows(2).all(|w| w[0] == w[1]);
    let tput = seqs[0].len() as f64 / ((ROUNDS * GAP_MS) as f64 / 1000.0);
    (
        LatencyStats::from_samples(&merged),
        tput,
        seqs[0].len() == expected && agree,
    )
}

fn ring_run(n: u32) -> (LatencyStats, f64, bool) {
    let addr = McastAddr(2);
    let mut w = BaselineWorld::new_with(n, SimConfig::with_seed(0xE2), addr, |id, members| {
        TokenRingNode::new(id, RingConfig::new(addr, members))
    });
    let mut merged = Vec::new();
    let mut seqs: Vec<Vec<(u64, u32, u64)>> = vec![Vec::new(); n as usize];
    for _ in 0..ROUNDS {
        for id in 1..=n {
            w.submit(id, PAYLOAD);
        }
        let part = w.run_collect(GAP_MS, 1);
        merged.extend(part.latencies_us);
        for (i, s) in part.sequences.into_iter().enumerate() {
            seqs[i].extend(s);
        }
    }
    let part = w.run_collect(500, 1);
    merged.extend(part.latencies_us);
    for (i, s) in part.sequences.into_iter().enumerate() {
        seqs[i].extend(s);
    }
    let expected = (ROUNDS * n as u64) as usize;
    let agree = seqs.windows(2).all(|w| w[0] == w[1]);
    let tput = seqs[0].len() as f64 / ((ROUNDS * GAP_MS) as f64 / 1000.0);
    (
        LatencyStats::from_samples(&merged),
        tput,
        seqs[0].len() == expected && agree,
    )
}

fn ftmp_sparse(n: u32, hb_ms: u64) -> LatencyStats {
    let proto = ProtocolConfig::with_seed(0xE2B).heartbeat(SimDuration::from_millis(hb_ms));
    let mut w = FtmpWorld::new(n, SimConfig::with_seed(0xE2B), proto, ClockMode::Lamport);
    for _ in 0..ROUNDS {
        w.send(1, PAYLOAD);
        w.run_ms(20);
    }
    w.run_ms(300);
    LatencyStats::from_samples(&w.collect().latencies_us)
}

fn seq_sparse(n: u32) -> LatencyStats {
    let addr = McastAddr(3);
    let mut w = BaselineWorld::new_with(n, SimConfig::with_seed(0xE2B), addr, |id, members| {
        SequencerNode::new(id, SequencerConfig::new(addr, members))
    });
    let mut merged = Vec::new();
    for _ in 0..ROUNDS {
        w.submit(1, PAYLOAD);
        let part = w.run_collect(20, 1);
        merged.extend(part.latencies_us);
    }
    let part = w.run_collect(300, 1);
    merged.extend(part.latencies_us);
    LatencyStats::from_samples(&merged)
}

/// Run E2.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e2",
        "Group-size scaling: FTMP vs fixed sequencer vs token ring (all members send)",
        &[
            "n",
            "FTMP mean/p99 (ms)",
            "Sequencer mean/p99 (ms)",
            "Token ring mean/p99 (ms)",
            "delivered msgs/s (F/S/T)",
        ],
    );
    let mut all_ok = true;
    for n in [2u32, 4, 6, 8, 12] {
        let (f, ft, fok) = ftmp_run(n);
        let (s, st, sok) = seq_run(n);
        let (r, rt, rok) = ring_run(n);
        all_ok &= fok && sok && rok;
        let ms =
            |x: &LatencyStats| format!("{:.2}/{:.2}", x.mean_us / 1000.0, x.p99_us as f64 / 1000.0);
        t.row(vec![
            n.to_string(),
            ms(&f),
            ms(&s),
            ms(&r),
            format!("{ft:.0}/{st:.0}/{rt:.0}"),
        ]);
    }
    t.note(format!(
        "every protocol delivered every message in one agreed order at every member: {}",
        if all_ok { "PASS" } else { "FAIL" }
    ));
    t.note("FTMP heartbeats at 2 ms here; its latency tracks the slowest member's horizon, the ring's tracks token rotation (grows with n), the sequencer's the two-hop pipeline");

    // The crossover: with a single sparse sender, FTMP's all-horizon wait
    // pays a heartbeat interval per message while the sequencer pays only
    // its pipeline — the regime where sequencer-based protocols win.
    let mut t2 = Table::new(
        "e2b",
        "Sparse single sender: FTMP's heartbeat wait vs the sequencer pipeline",
        &[
            "n",
            "FTMP hb=10ms mean (ms)",
            "FTMP hb=2ms mean (ms)",
            "Sequencer mean (ms)",
        ],
    );
    for n in [4u32, 8] {
        let f10 = ftmp_sparse(n, 10);
        let f2 = ftmp_sparse(n, 2);
        let sq = seq_sparse(n);
        t2.row(vec![
            n.to_string(),
            format!("{:.2}", f10.mean_us / 1000.0),
            format!("{:.2}", f2.mean_us / 1000.0),
            format!("{:.2}", sq.mean_us / 1000.0),
        ]);
    }
    t2.note("with idle co-members, every FTMP delivery waits for the next heartbeat round; the sequencer's latency is workload-independent — the crossover the related-work section implies");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e2_everyone_delivers_everything() {
        let tables = super::run();
        let rendered = tables[0].render();
        assert!(rendered.contains("PASS"), "{rendered}");
    }
}
