//! E9 — ablation of the any-holder retransmission design choice (§5).
//!
//! "The missing message can be retransmitted by any processor that has the
//! message." This ablation compares retransmission-responsibility policies
//! — original sender only, any holder with probability p, every holder —
//! under loss, reporting recovery latency and redundant-retransmission
//! cost. A second scenario crashes the original sender right after it
//! multicasts, where sender-only ARQ has nobody to answer during normal
//! operation and recovery rides entirely on the membership change.

use crate::metrics::LatencyStats;
use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::{ClockMode, ProtocolConfig, RetransmitPolicy};
use ftmp_net::{LossModel, SimConfig, SimDuration};

fn policy_label(p: RetransmitPolicy) -> String {
    match p {
        RetransmitPolicy::OriginalSenderOnly => "sender only".into(),
        RetransmitPolicy::AnyHolder { p } => format!("any holder p={p}"),
        RetransmitPolicy::AllHolders => "all holders".into(),
    }
}

fn run_lossy(policy: RetransmitPolicy, loss: f64) -> (LatencyStats, u64, u64, bool) {
    let mut proto = ProtocolConfig::with_seed(0xE9).heartbeat(SimDuration::from_millis(5));
    proto.retransmit_policy = policy;
    let sim = SimConfig::with_seed(0xE9).loss(LossModel::Iid { p: loss });
    let mut w = FtmpWorld::new(5, sim, proto, ClockMode::Lamport);
    let rounds = 40u64;
    for _ in 0..rounds {
        for id in 1..=5u32 {
            w.send(id, 128);
        }
        w.run_ms(5);
    }
    w.run_ms(1_500);
    let res = w.collect();
    let stats = LatencyStats::from_samples(&res.latencies_us);
    let (nacks, retrans, _) = w.recovery_stats();
    let ok = res.delivered() == rounds as usize * 5 && res.all_agree();
    (stats, nacks, retrans, ok)
}

/// Crash the sender right after its multicast lands at a *proper subset* of
/// the survivors; the rest must recover the message from a living holder.
/// Seeds are scanned until the loss pattern produces that situation (a
/// sender whose message reached nobody is trivially excluded by virtual
/// synchrony and not the interesting case).
fn run_sender_crash(policy: RetransmitPolicy) -> (bool, f64) {
    for seed in 0x9E00u64.. {
        let mut proto = ProtocolConfig::with_seed(seed).heartbeat(SimDuration::from_millis(5));
        proto.retransmit_policy = policy;
        let sim = SimConfig::with_seed(seed).loss(LossModel::Iid { p: 0.25 });
        let mut w = FtmpWorld::new(4, sim, proto, ClockMode::Lamport);
        w.run_ms(50);
        w.send(4, 128);
        w.run_ms(1); // the multicast lands (or is lost) per receiver
        let holders = (1..=3u32)
            .filter(|&id| {
                w.net
                    .node(id)
                    .unwrap()
                    .engine()
                    .group_metrics(w.group())
                    .unwrap()
                    .ordering_queue
                    > 0
            })
            .count();
        if holders == 0 || holders == 3 {
            continue; // need a partial delivery for a real recovery test
        }
        w.net.crash(4);
        w.run_ms(3_000);
        let res = w.collect();
        let delivered_everywhere = res
            .sequences
            .iter()
            .all(|s| s.iter().any(|&(_, src, _)| src == 4))
            && res.all_agree();
        let last_ms = res.latencies_us.iter().copied().max().unwrap_or(0) as f64 / 1000.0;
        return (delivered_everywhere, last_ms);
    }
    unreachable!("seed scan always terminates")
}

/// Run E9.
pub fn run() -> Vec<Table> {
    let policies = [
        RetransmitPolicy::OriginalSenderOnly,
        RetransmitPolicy::AnyHolder { p: 0.2 },
        RetransmitPolicy::AnyHolder { p: 0.4 },
        RetransmitPolicy::AllHolders,
    ];
    let mut t = Table::new(
        "e9",
        "Retransmission-responsibility ablation (5 members, 200 msgs)",
        &[
            "policy",
            "loss",
            "mean latency",
            "p99 latency",
            "NACKs",
            "retransmissions",
            "complete",
        ],
    );
    for &loss in &[0.05f64, 0.15] {
        for &p in &policies {
            let (stats, nacks, retrans, ok) = run_lossy(p, loss);
            t.row(vec![
                policy_label(p),
                format!("{:.0}%", loss * 100.0),
                format!("{} ms", stats.mean_ms()),
                format!("{:.2} ms", stats.p99_us as f64 / 1000.0),
                nacks.to_string(),
                retrans.to_string(),
                if ok { "PASS".into() } else { "FAIL".into() },
            ]);
        }
    }
    t.note("all-holders answers fastest but multiplies retransmission traffic; probabilistic any-holder buys most of the latency at a fraction of the cost");

    let mut t2 = Table::new(
        "e9b",
        "Sender crashes right after multicasting (25% loss): who recovers the message?",
        &[
            "policy",
            "delivered at all survivors",
            "worst delivery latency (ms)",
        ],
    );
    for &p in &policies {
        let (ok, last) = run_sender_crash(p);
        t2.row(vec![
            policy_label(p),
            if ok { "yes".into() } else { "NO".into() },
            format!("{last:.1}"),
        ]);
    }
    t2.note("delivery latency is identical across policies: a dead member's message cannot be *delivered* before the membership change removes it from the horizons, so the fail timeout dominates");
    t2.note("the policies differ in *recovery*: any-holder fetches the data within milliseconds, while sender-only ARQ has no live responder and leans entirely on the reconciliation phase's mandatory any-holder override");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_all_policies_eventually_complete() {
        let tables = run();
        assert!(
            !tables[0].render().contains("FAIL"),
            "{}",
            tables[0].render()
        );
        assert!(!tables[1].render().contains("NO"), "{}", tables[1].render());
    }

    #[test]
    fn e9_all_holders_costs_more_retransmissions() {
        let tables = run();
        let rows = &tables[0].rows;
        let retrans = |label: &str, loss: &str| -> u64 {
            rows.iter().find(|r| r[0] == label && r[1] == loss).unwrap()[5]
                .parse()
                .unwrap()
        };
        assert!(
            retrans("all holders", "15%") > retrans("sender only", "15%"),
            "redundant responders must show up as extra retransmissions"
        );
    }
}
