//! F1 — Figure 1: the protocol stack, verified dynamically.
//!
//! The paper's Figure 1 draws ROMP and PGMP side by side over RMP over IP
//! Multicast, with the ORB on top. This experiment runs a lossy three-member
//! group with application traffic, a voluntary membership change and a
//! crash, then reports — per FTMP message type — how much traffic flowed
//! and which layer consumed it, confirming the layering is real, not
//! nominal.

use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::wire::FtmpMsgType;
use ftmp_core::{ClockMode, ProcessorId, ProtocolConfig};
use ftmp_net::{LossModel, SimConfig};

fn layer_of(t: FtmpMsgType) -> &'static str {
    match t {
        FtmpMsgType::Regular => "ROMP -> ORB (ordered delivery)",
        FtmpMsgType::RetransmitRequest => "RMP (NACK recovery)",
        FtmpMsgType::Heartbeat => "ROMP (liveness / horizons)",
        FtmpMsgType::ConnectRequest => "PGMP (connection solicit)",
        FtmpMsgType::Connect => "PGMP (connection establish)",
        FtmpMsgType::AddProcessor => "PGMP (voluntary join)",
        FtmpMsgType::RemoveProcessor => "PGMP (voluntary leave)",
        FtmpMsgType::Suspect => "PGMP (fault suspicion)",
        FtmpMsgType::Membership => "PGMP (membership change)",
        FtmpMsgType::OverlayDigest => "ROMP (tree-mode aggregated liveness)",
    }
}

/// Run F1.
pub fn run() -> Vec<Table> {
    let sim = SimConfig::with_seed(0xF1).loss(LossModel::Iid { p: 0.05 });
    let mut w = FtmpWorld::new(4, sim, ProtocolConfig::with_seed(0xF1), ClockMode::Lamport);
    // Application traffic.
    for k in 0..30 {
        w.send(k % 4 + 1, 128);
        w.run_ms(2);
    }
    // Voluntary removal of P4 by P1 (RemoveProcessor path).
    let group = w.group();
    w.net.with_node(1, |n, now, out| {
        n.engine_mut().remove_processor(now, group, ProcessorId(4));
        n.pump_at(now, out);
    });
    w.run_ms(100);
    // Crash P3: the two remaining survivors reach the majority quorum
    // (2 of 3) and run the Suspect/Membership fault path.
    w.net.crash(3);
    w.run_ms(800);
    let res = w.collect();

    let mut t = Table::new(
        "f1",
        "Protocol stack in action (4 members, 5% loss, leave + crash)",
        &["FTMP type", "packets", "bytes", "consuming layer"],
    );
    for ty in FtmpMsgType::ALL {
        let p = w.net.stats().kind_packets(ty as u8);
        let b = w.net.stats().kind_bytes(ty as u8);
        t.row(vec![
            format!("{ty:?}"),
            p.to_string(),
            b.to_string(),
            layer_of(ty).to_string(),
        ]);
    }
    t.note(format!(
        "application deliveries at node 1: {}; all survivors agree on order: {}",
        res.delivered(),
        res.all_agree()
    ));
    t.note("Connect/ConnectRequest do not appear: this world binds its connection statically (F3 exercises them).");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f1_exercises_every_dynamic_layer() {
        let tables = run();
        let t = &tables[0];
        let count = |name: &str| -> u64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .map(|r| r[1].parse().unwrap())
                .unwrap_or(0)
        };
        assert!(count("Regular") >= 30);
        assert!(count("Heartbeat") > 0);
        assert!(count("RetransmitRequest") > 0, "5% loss must trigger NACKs");
        assert!(count("RemoveProcessor") >= 1);
        assert!(count("Suspect") >= 1);
        assert!(count("Membership") >= 1);
    }
}
