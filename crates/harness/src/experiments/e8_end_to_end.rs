//! E8 — the price of replication: FTMP invocations vs plain unicast IIOP.
//!
//! The paper's motivation (§1) is adding fault tolerance to CORBA; the cost
//! is the multicast ordering machinery under every invocation. This
//! experiment measures end-to-end request → reply latency for replicated
//! configurations over FTMP against the unreplicated TCP-like IIOP
//! baseline, with and without loss — the comparison the Eternal papers
//! made for the same protocol family.

use crate::metrics::LatencyStats;
use crate::report::Table;
use crate::worlds::OrbWorld;
use ftmp_baselines::unicast::{UnicastClient, UnicastEndpoint, UnicastServer};
use ftmp_core::ProtocolConfig;
use ftmp_net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime};

const ROUNDS: usize = 40;

fn unicast_echo(req: &[u8]) -> Vec<u8> {
    req.to_vec()
}

fn run_unicast(loss: LossModel, seed: u64) -> (LatencyStats, usize) {
    let (ca, sa) = (McastAddr(10), McastAddr(11));
    let mut net: SimNet<UnicastEndpoint> = SimNet::new(SimConfig::with_seed(seed).loss(loss));
    net.add_node(1, UnicastEndpoint::Client(UnicastClient::new(1, ca, sa)));
    net.add_node(
        2,
        UnicastEndpoint::Server(UnicastServer::new(2, sa, ca, unicast_echo)),
    );
    net.subscribe(1, ca);
    net.subscribe(2, sa);
    let mut sent_at: Vec<SimTime> = Vec::new();
    let mut lats = Vec::new();
    let mut completed = 0usize;
    for i in 0..ROUNDS {
        let now = net.now();
        sent_at.push(now);
        net.with_node(1, |n, now, out| {
            if let UnicastEndpoint::Client(c) = n {
                c.request(now, bytes::Bytes::from(vec![i as u8; 64]), out);
            }
        });
        // Poll for the completion with fine granularity.
        for _ in 0..200 {
            net.run_for(SimDuration::from_micros(100));
            let done = net
                .with_node(1, |n, _, _| {
                    if let UnicastEndpoint::Client(c) = n {
                        c.take_completed()
                    } else {
                        vec![]
                    }
                })
                .unwrap();
            if !done.is_empty() {
                completed += done.len();
                lats.push(net.now().saturating_since(sent_at[i]).as_micros());
                break;
            }
        }
    }
    (LatencyStats::from_samples(&lats), completed)
}

fn run_replicated(k: u32, m: u32, loss: LossModel, seed: u64) -> (LatencyStats, usize) {
    let mut w = OrbWorld::new(
        k,
        m,
        SimConfig::with_seed(seed).loss(loss),
        ProtocolConfig::with_seed(seed).heartbeat(SimDuration::from_millis(2)),
        || Box::new(ftmp_orb::Counter::default()),
    );
    let mut lats = Vec::new();
    let mut completed = 0usize;
    for _ in 0..ROUNDS {
        w.invoke_all("add", 1);
        // Poll at fine granularity for the completion.
        for _ in 0..400 {
            w.net.run_for(SimDuration::from_micros(200));
            let (done, l) = w.drain_completions();
            if !done.is_empty() {
                completed += done.len();
                lats.extend(l);
                break;
            }
        }
    }
    (LatencyStats::from_samples(&lats), completed)
}

/// Run E8.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e8",
        "End-to-end invocation latency: replicated FTMP vs unreplicated IIOP",
        &[
            "configuration",
            "loss",
            "mean RTT",
            "p99 RTT",
            "completed",
            "overhead vs IIOP",
        ],
    );
    for (loss, label) in [(LossModel::None, "0%"), (LossModel::Iid { p: 0.05 }, "5%")] {
        let (uni, uc) = run_unicast(loss.clone(), 0xE8);
        let base = uni.mean_us;
        t.row(vec![
            "IIOP 1 client -> 1 server".into(),
            label.into(),
            format!("{} ms", uni.mean_ms()),
            format!("{:.2} ms", uni.p99_us as f64 / 1000.0),
            format!("{uc}/{ROUNDS}"),
            "1.0x".into(),
        ]);
        for (k, m) in [(1u32, 2u32), (1, 3), (2, 3), (3, 3)] {
            let (rep, rc) = run_replicated(k, m, loss.clone(), 0xE8 + (k * 10 + m) as u64);
            t.row(vec![
                format!("FTMP {k} client x {m} server replicas"),
                label.into(),
                format!("{} ms", rep.mean_ms()),
                format!("{:.2} ms", rep.p99_us as f64 / 1000.0),
                format!("{rc}/{ROUNDS}"),
                format!("{:.1}x", rep.mean_us / base.max(1.0)),
            ]);
        }
    }
    t.note("the replicated RTT pays two ordered multicasts (request + reply), each waiting on group horizons; IIOP pays two one-way unicasts");
    t.note("under loss, IIOP stalls on its own retransmission timeout while FTMP's NACK path and replica redundancy absorb most losses");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e8_everything_completes() {
        let tables = super::run();
        let rendered = tables[0].render();
        for row in &tables[0].rows {
            assert_eq!(
                row[4],
                format!("{}/{}", super::ROUNDS, super::ROUNDS),
                "{rendered}"
            );
        }
    }
}
