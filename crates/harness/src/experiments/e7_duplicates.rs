//! E7 — duplicate detection and suppression across replicas (§4).
//!
//! k client replicas all multicast each request with the same
//! `(connection id, request number)`; m server replicas all multicast the
//! matching reply. Every endpoint therefore receives k copies of each
//! request and m copies of each reply, and the pair-based detector must
//! suppress all but the first. The grid measures the suppression counts
//! and verifies exactly-once execution.

use crate::report::Table;
use crate::worlds::OrbWorld;
use ftmp_core::ProtocolConfig;
use ftmp_net::SimConfig;

/// Run E7.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e7",
        "Duplicate suppression: k client replicas x m server replicas, 25 invocations",
        &[
            "k x m",
            "req copies rx/server",
            "req suppressed (total)",
            "reply suppressed (client 1)",
            "executed once",
            "client completions",
        ],
    );
    for &(k, m) in &[(1u32, 1u32), (1, 3), (2, 2), (3, 1), (3, 3), (4, 4)] {
        let seed = 0xE7 + (k * 10 + m) as u64;
        let mut w = OrbWorld::new(
            k,
            m,
            SimConfig::with_seed(seed),
            ProtocolConfig::with_seed(seed),
            || Box::new(ftmp_orb::Counter::default()),
        );
        let rounds = 25;
        for _ in 0..rounds {
            w.invoke_all("add", 1);
            w.run_ms(30);
        }
        w.run_ms(300);
        let (done, _) = w.drain_completions();
        // Exactly-once execution: every server's counter equals rounds.
        let og = w.conn().server;
        let exec_ok = w.servers.clone().iter().all(|&id| {
            let snap = w
                .net
                .node(id)
                .unwrap()
                .orb()
                .servant(og)
                .unwrap()
                .snapshot();
            ftmp_cdr::from_bytes::<i64>(&snap, ftmp_cdr::ByteOrder::Big).unwrap() == rounds as i64
        });
        let req_sup = w.server_suppressed();
        let reply_sup = w
            .net
            .node(w.clients[0])
            .unwrap()
            .orb()
            .suppression_counts()
            .1;
        t.row(vec![
            format!("{k} x {m}"),
            k.to_string(),
            req_sup.to_string(),
            reply_sup.to_string(),
            if exec_ok {
                "PASS".into()
            } else {
                "FAIL".into()
            },
            format!("{}/{rounds}", done.len()),
        ]);
    }
    t.note("expected request suppressions = (k-1) x rounds x m servers; reply suppressions at one client = (m-1) x rounds");
    t.note("suppression cost is a set probe per delivery; the win is that any single replica of either side suffices for progress");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e7_exactly_once_everywhere() {
        let tables = super::run();
        let rendered = tables[0].render();
        assert!(!rendered.contains("FAIL"), "{rendered}");
        // The (3,3) row: 2 suppressed per server per round x 3 servers x 25.
        let row = tables[0].rows.iter().find(|r| r[0] == "3 x 3").unwrap();
        assert_eq!(row[2], (2 * 3 * 25).to_string());
        assert_eq!(row[3], (2 * 25).to_string());
        assert_eq!(row[5], "25/25");
    }
}
