//! The experiment suite (DESIGN.md §6).
//!
//! Each experiment is a function returning one or more [`Table`]s. `run`
//! dispatches by id; `all_ids` lists them in presentation order.

pub mod e10_replication_styles;
pub mod e11_adaptivity;
pub mod e12_packing;
pub mod e13_conformance;
pub mod e14_latency_breakdown;
pub mod e1_heartbeat;
pub mod e2_group_size;
pub mod e3_loss;
pub mod e4_clocks;
pub mod e5_membership;
pub mod e6_buffers;
pub mod e7_duplicates;
pub mod e8_end_to_end;
pub mod e9_retransmit_ablation;
pub mod f1_stack;
pub mod f2_encapsulation;
pub mod f3_guarantees;

use crate::report::Table;

/// All experiment ids in presentation order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "f1", "f2", "f3", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11",
        "e12", "e13", "e14",
    ]
}

/// Run one experiment by id.
pub fn run(id: &str) -> Option<Vec<Table>> {
    Some(match id {
        "f1" => f1_stack::run(),
        "f2" => f2_encapsulation::run(),
        "f3" => f3_guarantees::run(),
        "e1" => e1_heartbeat::run(),
        "e2" => e2_group_size::run(),
        "e3" => e3_loss::run(),
        "e4" => e4_clocks::run(),
        "e5" => e5_membership::run(),
        "e6" => e6_buffers::run(),
        "e7" => e7_duplicates::run(),
        "e8" => e8_end_to_end::run(),
        "e9" => e9_retransmit_ablation::run(),
        "e10" => e10_replication_styles::run(),
        "e11" => e11_adaptivity::run(),
        "e12" => e12_packing::run(),
        "e13" => e13_conformance::run(),
        "e14" => e14_latency_breakdown::run(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_id_is_none() {
        assert!(super::run("nope").is_none());
    }

    #[test]
    fn ids_are_unique() {
        let ids = super::all_ids();
        let set: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(set.len(), ids.len());
    }
}
