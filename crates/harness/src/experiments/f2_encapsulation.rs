//! F2 — Figure 2: the GIOP-in-FTMP-in-IP encapsulation, measured in bytes.
//!
//! Figure 2 draws `IP Multicast header | FTMP header | GIOP header | data`.
//! This experiment marshals each GIOP message type, wraps it in an FTMP
//! Regular message, and reports the exact layer sizes and framing overhead
//! for a sweep of payload sizes.

use crate::report::Table;
use bytes::Bytes;
use ftmp_cdr::ByteOrder;
use ftmp_core::wire::{FtmpBody, FtmpMessage, FTMP_HEADER_LEN};
use ftmp_core::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum, SeqNum, Timestamp};
use ftmp_giop::{GiopMessage, RequestHeader, GIOP_HEADER_LEN};

/// Assumed IP + UDP header size for the overhead column (IPv4 20 + UDP 8).
const IP_UDP: usize = 28;

fn wrap_regular(giop: Vec<u8>) -> usize {
    let msg = FtmpMessage {
        retransmission: false,
        source: ProcessorId(1),
        group: GroupId(1),
        seq: SeqNum(1),
        ts: Timestamp(1),
        ack_ts: Timestamp(0),
        body: FtmpBody::Regular {
            conn: ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2)),
            request_num: RequestNum(1),
            giop: Bytes::from(giop),
        },
    };
    msg.encode(ByteOrder::Big).len()
}

fn request(payload: usize) -> Vec<u8> {
    GiopMessage::Request {
        header: RequestHeader {
            service_context: vec![],
            request_id: 1,
            response_expected: true,
            object_key: b"bank/account/1".to_vec(),
            operation: "deposit".into(),
            requesting_principal: vec![],
        },
        body: vec![0u8; payload],
    }
    .encode(ByteOrder::Big)
}

/// Run F2.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "f2",
        "Encapsulation of a GIOP Request (Fig. 2): per-layer bytes",
        &[
            "app payload",
            "GIOP msg",
            "FTMP msg",
            "on wire (+IP/UDP)",
            "framing overhead",
        ],
    );
    for payload in [0usize, 16, 64, 256, 1024, 4096] {
        let giop = request(payload);
        let ftmp = wrap_regular(giop.clone());
        let wire = ftmp + IP_UDP;
        let overhead = wire - payload;
        t.row(vec![
            payload.to_string(),
            giop.len().to_string(),
            ftmp.to_string(),
            wire.to_string(),
            format!(
                "{overhead} B ({:.1}%)",
                100.0 * overhead as f64 / wire as f64
            ),
        ]);
    }
    t.note(format!(
        "fixed headers: GIOP {GIOP_HEADER_LEN} B, FTMP {FTMP_HEADER_LEN} B, IP+UDP {IP_UDP} B (assumed); \
         the rest is the GIOP Request header (object key, operation, …) and the FTMP Regular preamble \
         (connection id, request number)"
    ));

    let mut t2 = Table::new(
        "f2b",
        "FTMP message sizes for each GIOP message type (empty bodies)",
        &["GIOP type", "GIOP msg bytes", "FTMP msg bytes"],
    );
    let samples: Vec<(&str, Vec<u8>)> = vec![
        ("Request", request(0)),
        (
            "Reply",
            GiopMessage::Reply {
                header: ftmp_giop::ReplyHeader::default(),
                body: vec![],
            }
            .encode(ByteOrder::Big),
        ),
        (
            "CancelRequest",
            GiopMessage::CancelRequest { request_id: 1 }.encode(ByteOrder::Big),
        ),
        (
            "LocateRequest",
            GiopMessage::LocateRequest(ftmp_giop::LocateRequestHeader {
                request_id: 1,
                object_key: b"bank/account/1".to_vec(),
            })
            .encode(ByteOrder::Big),
        ),
        (
            "LocateReply",
            GiopMessage::LocateReply {
                header: ftmp_giop::LocateReplyHeader::default(),
                body: vec![],
            }
            .encode(ByteOrder::Big),
        ),
        (
            "CloseConnection",
            GiopMessage::CloseConnection.encode(ByteOrder::Big),
        ),
        (
            "MessageError",
            GiopMessage::MessageError.encode(ByteOrder::Big),
        ),
        (
            "Fragment",
            GiopMessage::Fragment {
                body: vec![],
                more: false,
            }
            .encode(ByteOrder::Big),
        ),
    ];
    for (name, giop) in samples {
        t2.row(vec![
            name.to_string(),
            giop.len().to_string(),
            wrap_regular(giop).to_string(),
        ]);
    }
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_layer_arithmetic_is_consistent() {
        let tables = run();
        let t = &tables[0];
        for row in &t.rows {
            let payload: usize = row[0].parse().unwrap();
            let giop: usize = row[1].parse().unwrap();
            let ftmp: usize = row[2].parse().unwrap();
            let wire: usize = row[3].parse().unwrap();
            assert!(giop >= payload + GIOP_HEADER_LEN);
            assert!(ftmp > giop + FTMP_HEADER_LEN, "Regular preamble included");
            assert_eq!(wire, ftmp + IP_UDP);
        }
        // Every GIOP type wraps.
        assert_eq!(tables[1].rows.len(), 8);
    }
}
