//! E1 — the heartbeat-interval compromise (§5).
//!
//! "The choice of the heartbeat interval is a compromise between message
//! latency and network traffic. A shorter heartbeat interval results in
//! lower message latency but higher network traffic." This sweep measures
//! both sides of that compromise: a sparse single-sender workload (where
//! ordering must wait for other members' heartbeats to advance the
//! horizons) against the total packet and byte rate on the wire.

use crate::metrics::{fmt_rate, LatencyStats};
use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::wire::FtmpMsgType;
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_net::{SimConfig, SimDuration};

/// Run E1.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e1",
        "Heartbeat interval vs delivery latency vs network traffic (5 members, 1 sparse sender)",
        &[
            "hb interval",
            "mean latency",
            "p99 latency",
            "pkts/s total",
            "heartbeat pkts/s",
            "hb share",
        ],
    );
    for hb_ms in [1u64, 2, 5, 10, 20, 50, 100] {
        let proto = ProtocolConfig::with_seed(0xE1).heartbeat(SimDuration::from_millis(hb_ms));
        let mut w = FtmpWorld::new(5, SimConfig::with_seed(0xE1), proto, ClockMode::Lamport);
        // Sparse sender: one message every 50 ms for 2 simulated seconds.
        let rounds = 40;
        for _ in 0..rounds {
            w.send(1, 128);
            w.run_ms(50);
        }
        w.run_ms(500);
        let res = w.collect();
        let secs = w.net.now().as_secs_f64();
        let stats = LatencyStats::from_samples(&res.latencies_us);
        let total = w.net.stats().sent_packets;
        let hb = w.net.stats().kind_packets(FtmpMsgType::Heartbeat as u8);
        t.row(vec![
            format!("{hb_ms} ms"),
            format!("{} ms", stats.mean_ms()),
            format!("{:.3} ms", stats.p99_us as f64 / 1000.0),
            fmt_rate(total, secs),
            fmt_rate(hb, secs),
            format!("{:.0}%", 100.0 * hb as f64 / total.max(1) as f64),
        ]);
        assert_eq!(res.delivered(), rounds, "all messages delivered");
    }
    t.note("latency is send -> ordered delivery, sampled at every receiver");
    t.note("with one sparse sender, ordering waits for every member's next heartbeat: latency tracks the interval, traffic tracks its inverse");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e1_shows_the_compromise() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let mean_ms = |r: &Vec<String>| -> f64 { r[1].trim_end_matches(" ms").parse().unwrap() };
        let first = mean_ms(&rows[0]); // 1 ms heartbeats
        let last = mean_ms(rows.last().unwrap()); // 100 ms heartbeats
        assert!(
            last > 3.0 * first,
            "latency must grow with the heartbeat interval ({first} vs {last})"
        );
    }
}
