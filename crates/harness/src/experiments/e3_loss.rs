//! E3 — packet-loss sweep: NACK recovery cost (§5).
//!
//! RMP recovers losses with receiver NACKs answered by any holder. This
//! sweep injects i.i.d. and bursty loss and reports delivery latency,
//! NACK/retransmission traffic and the residual duplicate rate.

use crate::metrics::LatencyStats;
use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_net::{LossModel, SimConfig, SimDuration};

fn run_one(loss: LossModel, label: &str, t: &mut Table, layers: &mut Table) {
    let proto = ProtocolConfig::with_seed(0xE3).heartbeat(SimDuration::from_millis(5));
    let sim = SimConfig::with_seed(0xE3).loss(loss);
    let mut w = FtmpWorld::new(4, sim, proto, ClockMode::Lamport);
    let rounds = 50u64;
    for _ in 0..rounds {
        for id in 1..=4u32 {
            w.send(id, 128);
        }
        w.run_ms(5);
    }
    w.run_ms(1_000);
    let res = w.collect();
    let stats = LatencyStats::from_samples(&res.latencies_us);
    let (nacks, retrans, dups) = w.recovery_stats();
    let expected = rounds as usize * 4;
    let complete = res.delivered() == expected && res.all_agree();
    t.row(vec![
        label.to_string(),
        format!("{:.3}", w.net.stats().loss_rate()),
        format!("{} ms", stats.mean_ms()),
        format!("{:.2} ms", stats.p99_us as f64 / 1000.0),
        nacks.to_string(),
        retrans.to_string(),
        dups.to_string(),
        if complete {
            "PASS".into()
        } else {
            format!("FAIL ({}/{expected})", res.delivered())
        },
    ]);
    let lt = w.layer_totals();
    layers.row(vec![
        label.to_string(),
        lt.rmp.msgs_in.to_string(),
        lt.rmp.msgs_out.to_string(),
        lt.rmp.duplicates.to_string(),
        lt.rmp.retransmits_answered.to_string(),
        lt.rmp.reorder_depth_max.to_string(),
        lt.romp.delivered.to_string(),
        lt.romp.queue_high_water.to_string(),
    ]);
}

/// Run E3.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e3",
        "Loss sweep: recovery latency and NACK traffic (4 members, 200 msgs)",
        &[
            "loss model",
            "measured rate",
            "mean latency",
            "p99 latency",
            "NACKs",
            "retransmissions",
            "dup rx",
            "all delivered",
        ],
    );
    let mut layers = Table::new(
        "e3-layers",
        "Loss sweep: per-layer counters summed over the 4 members",
        &[
            "loss model",
            "rmp in",
            "rmp released",
            "rmp dups",
            "retx answered",
            "reorder depth max",
            "romp delivered",
            "romp queue hwm",
        ],
    );
    run_one(LossModel::None, "none", &mut t, &mut layers);
    for p in [0.01, 0.05, 0.10, 0.20] {
        run_one(
            LossModel::Iid { p },
            &format!("iid {:.0}%", p * 100.0),
            &mut t,
            &mut layers,
        );
    }
    run_one(
        LossModel::Burst {
            p_good: 0.01,
            p_bad: 0.5,
            p_enter_bad: 0.01,
            p_exit_bad: 0.1,
        },
        "burst (GE)",
        &mut t,
        &mut layers,
    );
    t.note("mean latency degrades gracefully; p99 absorbs the NACK round trips");
    t.note("dup rx counts extra copies received (any-holder redundancy + crossed retransmissions)");
    layers.note("rmp released == romp delivered at quiescence: every source-ordered message reaches total order");
    layers.note("reorder depth and the romp queue high-water grow with loss: gaps park messages in both layers");
    vec![t, layers]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e3_recovers_everything_at_every_loss_rate() {
        let tables = super::run();
        let rendered = tables[0].render();
        assert!(!rendered.contains("FAIL"), "{rendered}");
        // NACK count must grow with loss.
        let rows = &tables[0].rows;
        let nacks = |i: usize| -> u64 { rows[i][4].parse().unwrap() };
        assert_eq!(nacks(0), 0, "no loss, no NACKs");
        assert!(nacks(4) > nacks(1), "20% loss NACKs more than 1%");
    }
}
