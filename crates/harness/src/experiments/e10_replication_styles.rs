//! E10 — active vs warm-passive replication (the FT-CORBA extension of the
//! paper's model).
//!
//! Active replication executes every request m times and multicasts m
//! replies; warm-passive executes once and multicasts one reply plus one
//! state update. The trade is execution CPU + reply traffic against
//! state-transfer bytes and a failover window. This experiment measures
//! both styles on the same workload: invocation RTT, wire traffic, the
//! number of servant executions, and the failover gap after a primary /
//! replica crash.

use crate::metrics::LatencyStats;
use crate::report::Table;
use ftmp_core::pgmp::ServerRegistration;
use ftmp_core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
};
use ftmp_net::{McastAddr, SimConfig, SimDuration, SimNet};
use ftmp_orb::servant::{encode_i64_arg, BankAccount};
use ftmp_orb::{OrbEndpoint, OrbNode};

const DOMAIN: McastAddr = McastAddr(500);
const GROUP: McastAddr = McastAddr(600);
const ROUNDS: usize = 30;

fn og_server() -> ObjectGroupId {
    ObjectGroupId::new(2, 7)
}

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), og_server())
}

struct Outcome {
    rtt: LatencyStats,
    replies: u64,
    wire_bytes: u64,
    completed: usize,
    failover_completed: usize,
}

fn run_style(passive: bool, m: u32, seed: u64) -> Outcome {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    net.set_classifier(ftmp_core::wire::classify);
    let servers: Vec<ProcessorId> = (2..=m + 1).map(ProcessorId).collect();
    for id in 1..=m + 1 {
        let mut proc = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(seed).heartbeat(SimDuration::from_millis(2)),
            ClockMode::Lamport,
        );
        let mut orb = OrbEndpoint::new();
        if id == 1 {
            orb.register_client(conn());
        } else {
            orb.host_replica(
                og_server(),
                b"acct".to_vec(),
                Box::new(BankAccount::with_balance(0)),
            );
            if passive {
                orb.set_warm_passive(og_server(), ProcessorId(id), servers.clone());
            }
            proc.register_server(
                og_server(),
                ServerRegistration {
                    processors: servers.clone(),
                    pool: vec![(GroupId(10), GROUP)],
                },
                DOMAIN,
            );
        }
        net.add_node(id, OrbNode::new(proc, orb));
        net.with_node(id, |n, now, out| n.pump(now, out));
    }
    net.with_node(1, |n, now, out| {
        n.proc_mut()
            .open_connection(now, conn(), vec![ProcessorId(1)], DOMAIN);
        n.pump(now, out);
    });
    net.run_for(SimDuration::from_millis(100));
    net.reset_stats();

    let mut lats = Vec::new();
    let mut completed = 0usize;
    for _ in 0..ROUNDS {
        let t0 = net.now();
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(1), out);
        });
        for _ in 0..200 {
            net.run_for(SimDuration::from_micros(200));
            let done = net.with_node(1, |n, _, _| n.take_completions()).unwrap();
            if !done.is_empty() {
                completed += done.len();
                lats.push(net.now().saturating_since(t0).as_micros());
                break;
            }
        }
    }
    let wire_bytes = net.stats().sent_bytes;
    // Reply multiplicity, observed at the client: each executing replica
    // multicasts its own reply; the duplicate detector suppresses all but
    // the first, so completed + suppressed = total replies on the wire —
    // i.e. the number of replicas that executed each request.
    let replies = completed as u64 + net.node(1).unwrap().orb().suppression_counts().1;
    // Failover: crash the smallest server (the passive primary), invoke 3
    // more times, count completions within the window.
    net.crash(2);
    for _ in 0..3 {
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(1), out);
        });
        net.run_for(SimDuration::from_millis(30));
    }
    net.run_for(SimDuration::from_millis(1_500));
    let failover_completed = net
        .with_node(1, |n, _, _| n.take_completions())
        .unwrap()
        .len();
    Outcome {
        rtt: LatencyStats::from_samples(&lats),
        replies,
        wire_bytes,
        completed,
        failover_completed,
    }
}

/// Run E10.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e10",
        "Replication styles: active vs warm-passive (1 client, m server replicas, 30 invocations)",
        &[
            "style",
            "m",
            "mean RTT",
            "p99 RTT",
            "replies multicast",
            "wire KiB",
            "completed",
            "after primary crash",
        ],
    );
    for &m in &[2u32, 3] {
        for &passive in &[false, true] {
            let o = run_style(passive, m, 0xE10 + m as u64 + u64::from(passive));
            t.row(vec![
                if passive {
                    "warm-passive".into()
                } else {
                    "active".to_string()
                },
                m.to_string(),
                format!("{} ms", o.rtt.mean_ms()),
                format!("{:.2} ms", o.rtt.p99_us as f64 / 1000.0),
                o.replies.to_string(),
                format!("{:.1}", o.wire_bytes as f64 / 1024.0),
                format!("{}/{ROUNDS}", o.completed),
                format!("{}/3", o.failover_completed),
            ]);
        }
    }
    t.note("replies multicast = replicas that executed (active: every replica replies; warm-passive: only the primary) — measured at the client as completions + suppressed duplicates");
    t.note("warm-passive trades the redundant executions/replies for one state-snapshot multicast per request (visible in the wire bytes) and a failover replay window");
    t.note("failover column: requests issued while the crashed replica (the passive primary) is being detected — passive answers them by replaying the pending suffix at the new primary");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e10_execution_counts_separate_the_styles() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let replies = |style: &str, m: &str| -> u64 {
            rows.iter().find(|r| r[0] == style && r[1] == m).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert_eq!(
            replies("active", "3"),
            90,
            "3 replicas each replied to 30 requests"
        );
        assert_eq!(replies("warm-passive", "3"), 30, "only the primary replied");
        // Everything completes, including through the failover.
        for r in rows {
            assert_eq!(r[6], "30/30", "{r:?}");
            assert_eq!(r[7], "3/3", "{r:?}");
        }
    }
}
