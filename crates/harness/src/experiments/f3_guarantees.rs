//! F3 — Figure 3: the message-type × delivery-guarantee matrix, verified
//! under injected loss.
//!
//! Figure 3 tabulates, for each FTMP message type, whether it is delivered
//! reliably / source-ordered / totally ordered, with two exceptions:
//! Connect is not guaranteed to the *client group* and AddProcessor is not
//! guaranteed to the *new member* (neither can NACK yet) — both are covered
//! by periodic retransmission instead. This experiment reproduces the
//! matrix and attaches empirical evidence for every dynamic cell:
//!
//! * Regular under 10% loss: identical gap-free delivery sequences at all
//!   members (reliable + source-ordered + totally ordered);
//! * AddProcessor under 10% loss to a joiner that cannot NACK;
//! * Connect/ConnectRequest under 10% loss through the full handshake;
//! * Suspect/Membership under loss + crash: survivors converge.

use crate::report::Table;
use crate::worlds::{FtmpWorld, OrbWorld};
use ftmp_core::wire::FtmpMsgType;
use ftmp_core::{ClockMode, GroupId, Processor, ProcessorId, ProtocolConfig, SimProcessor};
use ftmp_net::{LossModel, McastAddr, SimConfig, SimDuration, SimTime};

fn check_regular() -> (bool, bool, bool) {
    let sim = SimConfig::with_seed(0xF3).loss(LossModel::Iid { p: 0.10 });
    let mut w = FtmpWorld::new(3, sim, ProtocolConfig::with_seed(0xF3), ClockMode::Lamport);
    let checker = w.attach_checker();
    for k in 0..40u32 {
        w.send(k % 3 + 1, 64);
        w.run_ms(2);
    }
    w.run_ms(400);
    checker.finish(w.live());
    let res = w.collect();
    let reliable =
        res.delivered() == 40 && checker.with_suite(|s| s.violations_of("reliability")) == 0;
    let source_ordered = checker.with_suite(|s| s.violations_of("source-order")) == 0;
    let total = checker.with_suite(|s| {
        s.violations_of("total-order") == 0 && s.violations_of("causal-order") == 0
    });
    (reliable, source_ordered, total)
}

fn check_add_processor_under_loss() -> bool {
    let sim = SimConfig::with_seed(0xF31).loss(LossModel::Iid { p: 0.10 });
    let gid = GroupId(1);
    let addr = McastAddr(100);
    let mut net = ftmp_net::SimNet::new(sim);
    let members: Vec<ProcessorId> = vec![ProcessorId(1), ProcessorId(2)];
    for id in 1..=2u32 {
        let mut e = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(7),
            ClockMode::Lamport,
        );
        e.create_group(SimTime::ZERO, gid, addr, members.clone());
        net.add_node(id, SimProcessor::new(e));
        net.with_node(id, |n, now, out| n.pump_at(now, out));
    }
    // The joiner.
    let mut e = Processor::new(
        ProcessorId(3),
        ProtocolConfig::with_seed(7),
        ClockMode::Lamport,
    );
    e.expect_join(gid, addr);
    net.add_node(3, SimProcessor::new(e));
    net.with_node(3, |n, now, out| n.pump_at(now, out));
    net.with_node(1, |n, now, out| {
        n.engine_mut().add_processor(now, gid, ProcessorId(3));
        n.pump_at(now, out);
    });
    net.run_for(SimDuration::from_millis(800));
    (1..=3u32).all(|id| {
        net.node(id)
            .unwrap()
            .engine()
            .membership(gid)
            .is_some_and(|m| m.len() == 3)
    })
}

fn check_connect_under_loss() -> bool {
    // OrbWorld::new panics if the handshake fails; run it under loss.
    let sim = SimConfig::with_seed(0xF32).loss(LossModel::Iid { p: 0.10 });
    let mut w = OrbWorld::new(2, 2, sim, ProtocolConfig::with_seed(11), || {
        Box::new(ftmp_orb::Counter::default())
    });
    w.invoke_all("add", 1);
    w.run_ms(300);
    let (done, _) = w.drain_completions();
    done.len() == 1
}

fn check_membership_under_loss() -> bool {
    let sim = SimConfig::with_seed(0xF33).loss(LossModel::Iid { p: 0.10 });
    let mut w = FtmpWorld::new(4, sim, ProtocolConfig::with_seed(13), ClockMode::Lamport);
    w.run_ms(50);
    w.net.crash(4);
    w.run_ms(1_200);
    (1..=3u32).all(|id| {
        w.net
            .node(id)
            .unwrap()
            .engine()
            .membership(w.group())
            .is_some_and(|m| m.len() == 3)
    })
}

/// Run F3.
pub fn run() -> Vec<Table> {
    let (reg_rel, reg_src, reg_tot) = check_regular();
    let add_ok = check_add_processor_under_loss();
    let conn_ok = check_connect_under_loss();
    let memb_ok = check_membership_under_loss();

    let mut t = Table::new(
        "f3",
        "Message types x delivery service (Fig. 3), verified under 10% loss",
        &[
            "Message type",
            "Reliable",
            "Source ordered",
            "Totally ordered",
            "Evidence",
        ],
    );
    let yes = |b: bool| if b { "Yes [PASS]" } else { "Yes [FAIL]" };
    for ty in FtmpMsgType::ALL {
        let (rel, src, tot, ev): (String, String, String, String) = match ty {
            FtmpMsgType::Regular => (
                yes(reg_rel).into(),
                yes(reg_src).into(),
                yes(reg_tot).into(),
                "40 msgs, 3 nodes: identical gap-free sequences".into(),
            ),
            FtmpMsgType::RetransmitRequest
            | FtmpMsgType::Heartbeat
            | FtmpMsgType::ConnectRequest
            | FtmpMsgType::OverlayDigest => (
                "No".into(),
                "No".into(),
                "No".into(),
                "unreliable by construction (no seq slot, never retained)".into(),
            ),
            FtmpMsgType::Connect => (
                format!(
                    "Yes, except to client group [{}]",
                    if conn_ok { "PASS" } else { "FAIL" }
                ),
                "Yes".into(),
                "Yes".into(),
                "handshake completes under loss via periodic Connect retry".into(),
            ),
            FtmpMsgType::AddProcessor => (
                format!(
                    "Yes, except to new member [{}]",
                    if add_ok { "PASS" } else { "FAIL" }
                ),
                "Yes".into(),
                "Yes".into(),
                "join completes under loss via sponsor retransmission".into(),
            ),
            FtmpMsgType::RemoveProcessor => (
                "Yes".into(),
                "Yes".into(),
                "Yes".into(),
                "ordered-delivery path shared with Regular (unit tests)".into(),
            ),
            FtmpMsgType::Suspect => (
                yes(memb_ok).into(),
                "Yes".into(),
                "No".into(),
                "crash under loss: survivors converge on the same membership".into(),
            ),
            FtmpMsgType::Membership => (
                yes(memb_ok).into(),
                "Yes".into(),
                "No".into(),
                "same scenario; virtual synchrony at the installation point".into(),
            ),
        };
        t.row(vec![format!("{ty:?}"), rel, src, tot, ev]);
    }
    t.note("static columns mirror wire::FtmpMsgType::{is_reliable, is_totally_ordered}, asserted in ftmp-core unit tests");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn f3_all_cells_pass() {
        let tables = super::run();
        let rendered = tables[0].render();
        assert!(!rendered.contains("FAIL"), "{rendered}");
    }
}
