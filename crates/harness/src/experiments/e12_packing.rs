//! E12 — datagram packing and ack piggybacking (DESIGN.md §5).
//!
//! Two questions about the [`Packing`] layer, both answered against the
//! identical workload with packing off:
//!
//! * **Load sweep** — three members, one rotating sender bursting small
//!   (64 B) messages. With `PackPolicy::Deadline(500 µs)` the packer holds
//!   each burst for up to half a tick and flushes one container per
//!   destination, so the datagram count on the wire should collapse as the
//!   burst size grows — while the delivered sequences stay identical and
//!   totally ordered.
//! * **Quiet-group suppression** — one slow sender (one message / 60 ms)
//!   against the default 10 ms heartbeat. Every flushed container carries
//!   the ack-timestamp vector as a trailer, so a standalone heartbeat whose
//!   only job is restating an unchanged ack is deferred (§5 safety rule:
//!   never longer than half the fail timeout). Heartbeat traffic should at
//!   least halve; nobody may be falsely convicted.

use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::processor::ProtocolEvent;
use ftmp_core::{ClockMode, FtmpMsgType, PackPolicy, Packing, ProtocolConfig};
use ftmp_net::{SimConfig, SimDuration};

/// Deadline-policy packing at an Ethernet-ish MTU: the configuration every
/// "packed" row uses.
fn packing_on() -> Packing {
    Packing::with(1400, PackPolicy::Deadline(SimDuration::from_micros(500)))
}

struct RunOut {
    sends: usize,
    delivered: usize,
    /// Total order held *and* no FaultReport fired anywhere.
    healthy: bool,
    datagrams: u64,
    messages: u64,
    mean_us: u64,
    p99_us: u64,
    heartbeats: u64,
    suppressed: u64,
}

fn mean(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.iter().sum::<u64>() / samples.len() as u64
}

fn p99(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    s[(s.len() - 1) * 99 / 100]
}

/// Drain the world's counters into a [`RunOut`] after a finished run.
fn collect(w: &mut FtmpWorld, sends: usize) -> RunOut {
    let res = w.collect();
    let mut faults = 0usize;
    let mut heartbeats = 0u64;
    let mut suppressed = 0u64;
    for id in 1..=w.n {
        if let Some(node) = w.net.node_mut(id) {
            faults += node
                .take_events()
                .iter()
                .filter(|(_, e)| matches!(e, ProtocolEvent::FaultReport { .. }))
                .count();
            let s = node.engine().stats();
            heartbeats += s.sent.get(&FtmpMsgType::Heartbeat).copied().unwrap_or(0);
            suppressed += s.heartbeats_suppressed;
        }
    }
    RunOut {
        sends,
        delivered: res.delivered(),
        healthy: res.all_agree() && faults == 0,
        datagrams: w.net.stats().sent_packets,
        messages: w.net.stats().sent_messages,
        mean_us: mean(&res.latencies_us),
        p99_us: p99(&res.latencies_us),
        heartbeats,
        suppressed,
    }
}

/// One load-sweep run: 30 rounds, each a burst of `burst` 64-byte sends
/// from a rotating sender followed by 2 ms of simulated time.
fn load_run(burst: usize, packing: Option<Packing>) -> RunOut {
    const ROUNDS: u32 = 30;
    let mut proto = ProtocolConfig::with_seed(0xE12);
    if let Some(p) = packing {
        proto = proto.packing(p);
    }
    let mut w = FtmpWorld::new(3, SimConfig::with_seed(0xE12), proto, ClockMode::Lamport);
    for round in 0..ROUNDS {
        let from = round % 3 + 1;
        for _ in 0..burst {
            w.send(from, 64);
        }
        w.run_us(2_000);
    }
    w.run_ms(100);
    collect(&mut w, ROUNDS as usize * burst)
}

/// One suppression run: P1 sends a 64-byte message every 60 ms — six
/// default heartbeat intervals of silence between data messages.
fn sparse_run(packing: Option<Packing>) -> RunOut {
    const SENDS: usize = 50;
    let mut proto = ProtocolConfig::with_seed(0xE12B);
    if let Some(p) = packing {
        proto = proto.packing(p);
    }
    let mut w = FtmpWorld::new(3, SimConfig::with_seed(0xE12B), proto, ClockMode::Lamport);
    for _ in 0..SENDS {
        w.send(1, 64);
        w.run_ms(60);
    }
    w.run_ms(200);
    collect(&mut w, SENDS)
}

fn push(t: &mut Table, scenario: &str, mode: &str, load: &str, o: &RunOut) {
    let density = if o.datagrams == 0 {
        0.0
    } else {
        o.messages as f64 / o.datagrams as f64
    };
    t.row(vec![
        scenario.into(),
        mode.into(),
        load.into(),
        o.sends.to_string(),
        o.delivered.to_string(),
        if o.healthy { "yes" } else { "NO" }.into(),
        o.datagrams.to_string(),
        o.messages.to_string(),
        format!("{density:.2}"),
        o.mean_us.to_string(),
        o.p99_us.to_string(),
        o.heartbeats.to_string(),
        o.suppressed.to_string(),
    ]);
}

/// Run E12.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e12",
        "Datagram packing and ack piggybacking: packed (MTU 1400, deadline 500 us) vs unpacked (3 members)",
        &[
            "scenario",
            "mode",
            "load",
            "sends",
            "delivered",
            "healthy",
            "datagrams",
            "messages",
            "msgs/dgram",
            "mean us",
            "p99 us",
            "heartbeats",
            "suppressed",
        ],
    );
    for burst in [1usize, 4, 8] {
        let load = format!("burst {burst}");
        push(&mut t, "load", "unpacked", &load, &load_run(burst, None));
        push(
            &mut t,
            "load",
            "packed",
            &load,
            &load_run(burst, Some(packing_on())),
        );
    }
    push(&mut t, "sparse", "unpacked", "1 / 60 ms", &sparse_run(None));
    push(
        &mut t,
        "sparse",
        "packed",
        "1 / 60 ms",
        &sparse_run(Some(packing_on())),
    );
    t.note("datagrams = packets on the wire, messages = FTMP messages inside them (a container counts once as a packet, N times as messages); packing never changes what is delivered, only how it is framed");
    t.note("sparse: a heartbeat restating an unchanged ack is deferred while recent containers carried the ack vector, capped at fail_timeout/2 — suppressed counts deferral windows, heartbeats counts what still went out");
    vec![t]
}

#[cfg(test)]
mod tests {
    /// The ISSUE acceptance criteria for E12, asserted against the same
    /// table the report prints.
    #[test]
    fn e12_packing_halves_datagrams_and_suppresses_heartbeats() {
        let tables = super::run();
        let rows = &tables[0].rows;
        // Every run, packed or not, keeps total order and full membership.
        for r in rows {
            assert_eq!(r[5], "yes", "unhealthy run: {r:?}");
        }
        // Rows 0..6: load sweep, (unpacked, packed) per burst size. Packing
        // must never change the delivered count, and at burst >= 4 (the
        // small-message load point) must at least halve the datagrams.
        for pair in rows[..6].chunks(2) {
            assert_eq!(pair[0][4], pair[1][4], "delivery changed: {pair:?}");
            let unpacked: u64 = pair[0][6].parse().unwrap();
            let packed: u64 = pair[1][6].parse().unwrap();
            assert!(packed <= unpacked, "packing added datagrams: {pair:?}");
            if pair[0][2] != "burst 1" {
                assert!(
                    packed * 2 <= unpacked,
                    "expected >= 2x datagram reduction at {}: {unpacked} vs {packed}",
                    pair[0][2]
                );
            }
        }
        // Rows 6..8: sparse sender, unpacked then packed. Piggybacked ack
        // vectors must suppress at least half the standalone heartbeats.
        let hb_unpacked: u64 = rows[6][11].parse().unwrap();
        let hb_packed: u64 = rows[7][11].parse().unwrap();
        assert!(
            hb_packed * 2 <= hb_unpacked,
            "expected >= 50% heartbeat suppression: {hb_unpacked} vs {hb_packed}"
        );
        assert!(
            rows[7][12].parse::<u64>().unwrap() > 0,
            "suppression counter never fired"
        );
        assert_eq!(rows[6][4], rows[7][4], "sparse delivery changed");
    }
}
