//! E14 — latency breakdown via the telemetry spine (DESIGN.md §10).
//!
//! The same rotating-sender workload runs under three network scenarios
//! (lossless, 8% iid loss, Gilbert–Elliott burst loss) with per-processor
//! telemetry enabled, and the merged histograms break end-to-end latency
//! into its per-layer components:
//!
//! * `ordering_delay_us` — ROMP hold time from enqueue to total-order
//!   release (§4: the price of ordering).
//! * `stability_lag_us` — extra wait from delivery to stability, i.e. how
//!   long RMP retention actually pins a message.
//! * `e2e_self_us` — send → own ordered delivery, the figure an application
//!   sees on a multicast it issued itself.
//! * `rmp_recovery_us` — how long a message sat buffered behind a
//!   source-order gap before RMP released it: arrival skew when nothing is
//!   lost, the NACK-repair tail under loss.
//!
//! The golden trace-hash test in `ftmp-core` proves this instrumentation
//! changes no wire byte, so these numbers describe exactly the traffic the
//! other experiments measure.
//!
//! With `FTMP_METRICS_DIR` set, the merged per-scenario snapshots are also
//! written to `$FTMP_METRICS_DIR/e14_metrics.json` for CI trending.

use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_net::{LossModel, SimConfig};
use ftmp_telemetry::{Registry, Snapshot};

/// The latency components reported, in pipeline order.
const HISTS: [&str; 4] = [
    "e2e_self_us",
    "ordering_delay_us",
    "stability_lag_us",
    "rmp_recovery_us",
];

/// Recovery-activity counters that contextualize the histograms.
const COUNTERS: [&str; 4] = [
    "deliveries",
    "nacks_sent",
    "retransmissions_answered",
    "window_closes",
];

fn scenarios() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("lossless", SimConfig::with_seed(0xE14)),
        (
            "iid-loss-8%",
            SimConfig::with_seed(0xE14).loss(LossModel::Iid { p: 0.08 }),
        ),
        (
            "burst-loss",
            SimConfig::with_seed(0xE14).loss(LossModel::Burst {
                p_good: 0.01,
                p_bad: 0.6,
                p_enter_bad: 0.02,
                p_exit_bad: 0.25,
            }),
        ),
    ]
}

/// One scenario: 3 members, 60 rounds of a rotating sender bursting three
/// small messages every 2 ms, then a settle window; telemetry merged
/// across all processors into one snapshot.
fn run_scenario(sim: SimConfig) -> Snapshot {
    let mut w = FtmpWorld::new(3, sim, ProtocolConfig::with_seed(0xE14), ClockMode::Lamport);
    for id in 1..=w.n {
        w.net
            .with_node(id, |n, _, _| n.engine_mut().enable_telemetry());
    }
    for round in 0..60u32 {
        let from = round % 3 + 1;
        for k in 0..3usize {
            w.send(from, 64 + k * 64);
        }
        w.run_us(2_000);
    }
    // Settle: drain recoveries, let stability catch up to delivery.
    w.run_ms(500);
    let mut merged = Registry::new();
    for id in 1..=w.n {
        if let Some(node) = w.net.node(id) {
            if let Some(t) = node.engine().telemetry() {
                merged.merge(t.registry());
            }
            // The engine's shell counters (packing, heartbeat suppression,
            // per-type receptions) live outside the telemetry registry;
            // fold them in so the metrics snapshot carries both.
            node.engine().stats().register_metrics(&mut merged);
        }
    }
    merged.snapshot()
}

/// Write the merged snapshots as one JSON object keyed by scenario.
fn dump_metrics(dir: &str, snaps: &[(&'static str, Snapshot)]) -> std::io::Result<()> {
    let mut s = String::from("{\n");
    for (i, (name, snap)) in snaps.iter().enumerate() {
        s.push_str(&format!(
            "  \"{}\": {}{}\n",
            name,
            snap.to_json(),
            if i + 1 < snaps.len() { "," } else { "" }
        ));
    }
    s.push_str("}\n");
    std::fs::create_dir_all(dir)?;
    std::fs::write(std::path::Path::new(dir).join("e14_metrics.json"), s)
}

/// Run E14 and render the latency-breakdown and recovery-context tables.
pub fn run() -> Vec<Table> {
    let snaps: Vec<(&'static str, Snapshot)> = scenarios()
        .into_iter()
        .map(|(name, sim)| (name, run_scenario(sim)))
        .collect();

    let mut lat = Table::new(
        "e14",
        "E14 — per-layer latency breakdown (3 members, 180 multicasts, merged over processors)",
        &[
            "scenario", "metric", "count", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)",
        ],
    );
    for (name, snap) in &snaps {
        for metric in HISTS {
            let h = snap.histogram(metric).cloned().unwrap_or_default();
            lat.row(vec![
                name.to_string(),
                metric.to_string(),
                h.count.to_string(),
                h.p50.to_string(),
                h.p95.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
    }
    lat.note(
        "ordering_delay is the ROMP hold (enqueue → total-order release); stability_lag is \
         delivery → stability (RMP retention time); e2e_self is send → own delivery; \
         rmp_recovery is buffered-behind-a-gap → released (arrival skew when lossless, \
         the NACK-repair tail under loss).",
    );
    lat.note(
        "the telemetry-off/on golden trace-hash test pins the wire traffic: these histograms \
         observe the protocol, they do not perturb it.",
    );

    let mut ctx = Table::new(
        "e14b",
        "E14 — recovery context (merged counters per scenario)",
        &[
            "scenario",
            "deliveries",
            "nacks_sent",
            "retransmissions_answered",
            "window_closes",
        ],
    );
    for (name, snap) in &snaps {
        let mut row = vec![name.to_string()];
        for c in COUNTERS {
            row.push(snap.counter(c).unwrap_or(0).to_string());
        }
        ctx.row(row);
    }

    if let Ok(dir) = std::env::var("FTMP_METRICS_DIR") {
        if let Err(e) = dump_metrics(&dir, &snaps) {
            eprintln!("e14: failed to write metrics JSON: {e}");
        }
    }

    vec![lat, ctx]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smoke: under loss the recovery histogram populates and every
    /// scenario observes latency, with plausibly ordered percentiles.
    #[test]
    fn e14_smoke() {
        let snaps: Vec<(&'static str, Snapshot)> = scenarios()
            .into_iter()
            .map(|(name, sim)| (name, run_scenario(sim)))
            .collect();
        for (name, snap) in &snaps {
            let e2e = snap.histogram("e2e_self_us").expect("e2e histogram");
            assert!(e2e.count > 0, "{name}: no end-to-end samples");
            assert!(e2e.p50 <= e2e.p99 && e2e.p99 <= e2e.max, "{name}: order");
            assert!(snap.counter("deliveries").unwrap_or(0) > 0, "{name}");
        }
        let lossy = &snaps[1].1;
        assert!(
            lossy.counter("nacks_sent").unwrap_or(0) > 0,
            "8% iid loss must trigger recovery"
        );
    }
}
