//! E5 — fault → suspicion → conviction → new membership (§7.2).
//!
//! A member crash-stops; the survivors' fault detectors fire after
//! `fail_timeout`, Suspect messages accumulate a majority, Membership
//! proposals reconcile the message sets, and a new membership installs.
//! This sweep measures the reconfiguration time (crash → MembershipChange
//! at the last survivor) and the ordering stall it causes, across group
//! sizes and detector timeouts.

use crate::report::Table;
use crate::worlds::FtmpWorld;
use ftmp_core::{ClockMode, ProtocolConfig, ProtocolEvent};
use ftmp_net::{SimConfig, SimDuration};

struct Outcome {
    reconfig_ms: f64,
    stall_ms: f64,
    survivors_agree: bool,
    layers: ftmp_core::processor::LayerCounters,
}

fn run_one(n: u32, fail_timeout_ms: u64, seed: u64) -> Outcome {
    let proto = ProtocolConfig::with_seed(seed)
        .heartbeat(SimDuration::from_millis(5))
        .fail_timeout_of(SimDuration::from_millis(fail_timeout_ms));
    let mut w = FtmpWorld::new(n, SimConfig::with_seed(seed), proto, ClockMode::Lamport);
    // Background load so the stall is visible.
    for _ in 0..20 {
        for id in 1..=n {
            w.send(id, 64);
        }
        w.run_ms(5);
    }
    w.run_ms(100);
    let _ = w.collect();
    let crash_at = w.net.now();
    w.net.crash(n); // highest id dies
                    // Keep load flowing from survivors.
    for _ in 0..200 {
        w.send(1, 64);
        w.run_ms(5);
    }
    w.run_ms((4 * fail_timeout_ms).max(1_000));
    // Reconfiguration time: the last survivor's MembershipChange event.
    let mut done_at = None;
    for id in 1..n {
        let evs = w.net.node_mut(id).unwrap().take_events();
        for (at, e) in evs {
            if let ProtocolEvent::MembershipChange { members, .. } = &e {
                if members.len() == (n - 1) as usize {
                    let t = at.saturating_since(crash_at).as_micros();
                    done_at = Some(done_at.map_or(t, |d: u64| d.max(t)));
                }
            }
        }
    }
    let res = w.collect();
    // Ordering stall: the largest gap between consecutive deliveries at
    // node 1 in the post-crash window.
    let stall = res.latencies_us.iter().copied().max().unwrap_or(0);
    Outcome {
        reconfig_ms: done_at.map_or(f64::NAN, |us| us as f64 / 1000.0),
        stall_ms: stall as f64 / 1000.0,
        survivors_agree: res.all_agree(),
        layers: w.layer_totals(),
    }
}

/// Run E5.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "e5",
        "Reconfiguration after a crash: detection + reconciliation time",
        &[
            "members",
            "fail timeout",
            "reconfig time (ms)",
            "max delivery stall (ms)",
            "survivors agree",
            "suspect rx",
            "proposals rx",
            "convictions",
            "reconfigs",
            "flush discards",
        ],
    );
    for &n in &[3u32, 5, 7, 9] {
        for &ft in &[50u64, 100, 200] {
            let o = run_one(n, ft, 0xE5 + n as u64 + ft);
            t.row(vec![
                n.to_string(),
                format!("{ft} ms"),
                format!("{:.1}", o.reconfig_ms),
                format!("{:.1}", o.stall_ms),
                if o.survivors_agree {
                    "PASS".into()
                } else {
                    "FAIL".into()
                },
                o.layers.pgmp.suspect_reports_in.to_string(),
                o.layers.pgmp.proposals_in.to_string(),
                o.layers.pgmp.convictions.to_string(),
                o.layers.pgmp.reconfigurations.to_string(),
                o.layers.romp.discarded_at_flush.to_string(),
            ]);
        }
    }
    t.note("reconfig time = crash -> last survivor installs the (n-1)-membership; dominated by fail_timeout, plus a few ms of Suspect/Membership exchange");
    t.note("ordering stalls while the dead member gates the horizons, then the flush releases the backlog (virtual synchrony)");
    t.note("PGMP columns sum the survivors' per-layer counters: suspect/proposal traffic in, quorum convictions and installed reconfigurations");
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn e5_reconfig_tracks_fail_timeout() {
        let tables = super::run();
        let rows = &tables[0].rows;
        assert!(!tables[0].render().contains("FAIL"));
        // For 3 members: reconfig at 200 ms timeout takes longer than at 50.
        let val = |i: usize| -> f64 { rows[i][2].parse().unwrap() };
        assert!(val(2) > val(0), "200 ms timeout slower than 50 ms");
        // And reconfig time must exceed the timeout itself.
        for (i, &ft) in [50.0f64, 100.0, 200.0].iter().enumerate() {
            assert!(val(i) >= ft, "row {i}: {} < {ft}", val(i));
        }
    }
}
