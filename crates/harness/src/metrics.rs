//! Latency statistics and small numeric helpers.

/// Summary statistics over a set of latency samples (microseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, µs.
    pub mean_us: f64,
    /// Median, µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

impl LatencyStats {
    /// Compute statistics from raw microsecond samples.
    pub fn from_samples(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut v = samples.to_vec();
        v.sort_unstable();
        let count = v.len();
        let sum: u128 = v.iter().map(|&x| x as u128).sum();
        LatencyStats {
            count,
            mean_us: sum as f64 / count as f64,
            p50_us: percentile(&v, 0.50),
            p90_us: percentile(&v, 0.90),
            p99_us: percentile(&v, 0.99),
            max_us: *v.last().expect("non-empty"),
        }
    }

    /// Render the mean in milliseconds with two decimals.
    pub fn mean_ms(&self) -> String {
        format!("{:.3}", self.mean_us / 1000.0)
    }
}

/// Nearest-rank percentile of a sorted slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Format a count-per-second rate with sensible precision.
pub fn fmt_rate(count: u64, seconds: f64) -> String {
    if seconds <= 0.0 {
        return "-".into();
    }
    let r = count as f64 / seconds;
    if r >= 1000.0 {
        format!("{:.1}k", r / 1000.0)
    } else {
        format!("{r:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_empty_are_zero() {
        let s = LatencyStats::from_samples(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_us, 0);
    }

    #[test]
    fn stats_basic() {
        let samples: Vec<u64> = (1..=100).collect();
        let s = LatencyStats::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_us, 50);
        assert_eq!(s.p90_us, 90);
        assert_eq!(s.p99_us, 99);
        assert_eq!(s.max_us, 100);
        assert!((s.mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7], 0.5), 7);
        assert_eq!(percentile(&[7], 0.99), 7);
    }

    #[test]
    fn stats_unsorted_input() {
        let s = LatencyStats::from_samples(&[30, 10, 20]);
        assert_eq!(s.p50_us, 20);
        assert_eq!(s.max_us, 30);
    }

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(100, 2.0), "50.0");
        assert_eq!(fmt_rate(5_000, 1.0), "5.0k");
        assert_eq!(fmt_rate(1, 0.0), "-");
    }
}
