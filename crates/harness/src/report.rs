//! Experiment result tables: aligned text output + JSON dumps.

use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// One experiment's result table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Experiment id (`f1` … `e9`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows, one cell per column.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== [{}] {} ==\n", self.id, self.title));
        let head: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        out.push_str(&head.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(head.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Write `<dir>/<id>.json`.
    pub fn dump_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        let s = serde_json::to_string_pretty(self).expect("table serializes");
        f.write_all(s.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("e0", "Demo", &["a", "column_b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note("hello");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== [e0] Demo =="));
        assert!(r.contains("a    column_b"));
        assert!(r.contains("333  4"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", "x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("ftmp_table_test");
        sample().dump_json(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("e0.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["id"], "e0");
        assert_eq!(v["rows"][1][0], "333");
    }
}
