//! Experiment result tables: aligned text output + JSON dumps.

use std::io::Write;
use std::path::Path;

/// One experiment's result table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (`f1` … `e9`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows, one cell per column.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== [{}] {} ==\n", self.id, self.title));
        let head: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect();
        out.push_str(&head.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(head.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Render as a pretty-printed JSON object (no external dependency —
    /// the build environment is offline, so the harness emits JSON by
    /// hand; every value is a string, array or object, so escaping is
    /// the only subtlety).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"id\": {},\n", json_str(&self.id)));
        out.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        out.push_str(&format!(
            "  \"columns\": {},\n",
            json_str_array(&self.columns)
        ));
        out.push_str("  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&json_str_array(row));
        }
        if self.rows.is_empty() {
            out.push_str("],\n");
        } else {
            out.push_str("\n  ],\n");
        }
        out.push_str(&format!("  \"notes\": {}\n", json_str_array(&self.notes)));
        out.push('}');
        out
    }

    /// Write `<dir>/<id>.json`.
    pub fn dump_json(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())
    }
}

/// Escape and quote one JSON string.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a JSON array of strings on one line.
fn json_str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", cells.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("e0", "Demo", &["a", "column_b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.note("hello");
        t
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        assert!(r.contains("== [e0] Demo =="));
        assert!(r.contains("a    column_b"));
        assert!(r.contains("333  4"));
        assert!(r.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", "x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_dump_is_well_formed() {
        let dir = std::env::temp_dir().join("ftmp_table_test");
        sample().dump_json(&dir).unwrap();
        let s = std::fs::read_to_string(dir.join("e0.json")).unwrap();
        assert!(s.contains("\"id\": \"e0\""));
        assert!(s.contains("[\"333\", \"4\"]"));
        assert!(s.contains("\"notes\": [\"hello\"]"));
        // Balanced delimiters (every value here is a flat string).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
        assert_eq!(s.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_escapes_specials() {
        let mut t = Table::new("esc", "Quote \" and \\ and\nnewline", &["c"]);
        t.row(vec!["tab\there".into()]);
        let s = t.to_json();
        assert!(s.contains(r#""Quote \" and \\ and\nnewline""#));
        assert!(s.contains(r#""tab\there""#));
    }
}
