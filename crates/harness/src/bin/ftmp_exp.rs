//! `ftmp-exp` — regenerate the paper's figures and the derived experiments.
//!
//! ```text
//! ftmp-exp --exp all              # run everything, print tables
//! ftmp-exp --exp e1,e3           # run a subset
//! ftmp-exp --exp all --json out/ # also dump machine-readable JSON
//! ftmp-exp --list                # list experiment ids
//! ```

use ftmp_harness::experiments;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: ftmp-exp --exp <id[,id…]|all> [--json <dir>]\n       ftmp-exp --list\n\nexperiments: {}",
        experiments::all_ids().join(", ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut exps: Vec<String> = Vec::new();
    let mut json_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for id in experiments::all_ids() {
                    println!("{id}");
                }
                return;
            }
            "--exp" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                if v == "all" {
                    exps = experiments::all_ids()
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                } else {
                    exps.extend(v.split(',').map(|s| s.trim().to_string()));
                }
            }
            "--json" => {
                i += 1;
                let Some(v) = args.get(i) else { usage() };
                json_dir = Some(PathBuf::from(v));
            }
            _ => usage(),
        }
        i += 1;
    }
    if exps.is_empty() {
        usage();
    }
    for id in &exps {
        let Some(tables) = experiments::run(id) else {
            eprintln!("unknown experiment '{id}'");
            std::process::exit(2);
        };
        for t in tables {
            t.print();
            if let Some(dir) = &json_dir {
                if let Err(e) = t.dump_json(dir) {
                    eprintln!("failed to write JSON for {}: {e}", t.id);
                }
            }
        }
    }
}
