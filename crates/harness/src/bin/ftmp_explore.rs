//! `ftmp-explore` — E19: coverage-guided schedule exploration vs. the
//! fixed matrix.
//!
//! Runs the fixed scenario matrix and the feedback-guided explorer at the
//! *same* cell-execution budget, compares how many `(metric, log2-bucket)`
//! coverage pairs each reached, and asserts the explorer strictly wins —
//! the acceptance criterion for DESIGN.md §15. Writes the growth curves,
//! corpus manifest (replayable genome JSONs) and any minimized failures to
//! `results/e19.json` and `results/e19_corpus.json`.
//!
//! ```text
//! ftmp-explore                               # default budget (48 cells)
//! ftmp-explore --budget 2000 --steps 60      # long bug-hunt run
//! ftmp-explore --seed 0xBEEF --out results/e19.json
//! ```
//!
//! Exit status: 0 when the explorer beat the matrix and no oracle
//! violations surfaced; 1 when either fails (the JSON is still written —
//! a failure's minimized genome is the artifact you want).

use ftmp_check::{explore, matrix_coverage, CoverageMap, ExploreConfig, ExploreOutcome, Scenario};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: ftmp-explore [--budget N] [--steps N] [--seed N|0xHEX] \
         [--scenarios a,b,…] [--out FILE] [--corpus FILE]\n\
         scenarios: {}",
        Scenario::matrix()
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ExploreConfig::default();
    let mut out_path = PathBuf::from("results/e19.json");
    let mut corpus_path = PathBuf::from("results/e19_corpus.json");
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--budget" => cfg.budget = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--steps" => cfg.steps = take(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.base_seed = parse_u64(&take(&mut i)).unwrap_or_else(|| usage()),
            "--scenarios" => {
                cfg.scenarios = take(&mut i)
                    .split(',')
                    .map(|n| Scenario::by_name(n.trim()).unwrap_or_else(|| usage()))
                    .collect();
            }
            "--out" => out_path = PathBuf::from(take(&mut i)),
            "--corpus" => corpus_path = PathBuf::from(take(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    if cfg.scenarios.is_empty() || cfg.budget == 0 {
        usage();
    }

    eprintln!(
        "e19: fixed matrix, {} scenarios, budget {} cells, {} steps…",
        cfg.scenarios.len(),
        cfg.budget,
        cfg.steps
    );
    let (matrix_cov, matrix_history) = matrix_coverage(&cfg);
    eprintln!(
        "e19: matrix reached {} buckets; exploring at the same budget…",
        matrix_cov.len()
    );
    let outcome = explore(&cfg);
    eprintln!(
        "e19: explorer reached {} buckets in {} executions, corpus {}, failures {}",
        outcome.coverage.len(),
        outcome.executions,
        outcome.corpus.len(),
        outcome.failures.len()
    );

    if let Some(dir) = out_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(
        &out_path,
        report_json(&cfg, &matrix_cov, &matrix_history, &outcome),
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", out_path.display()));
    if let Some(dir) = corpus_path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&corpus_path, corpus_json(&outcome))
        .unwrap_or_else(|e| panic!("write {}: {e}", corpus_path.display()));
    eprintln!(
        "e19: wrote {} and {}",
        out_path.display(),
        corpus_path.display()
    );

    for f in &outcome.failures {
        eprintln!(
            "e19: VIOLATION ({} violations) minimized to {} gene(s): {}",
            f.verdict.violations,
            f.genome.genes.len(),
            f.genome.to_json()
        );
        if let Some(cx) = &f.verdict.counterexample {
            eprintln!("{cx}");
        }
    }

    // The acceptance criterion: strictly more coverage at equal budget.
    let won = outcome.coverage.len() > matrix_cov.len();
    if !won {
        eprintln!(
            "e19: FAIL — explorer {} buckets vs matrix {} (needs strictly more)",
            outcome.coverage.len(),
            matrix_cov.len()
        );
    }
    if !won || !outcome.failures.is_empty() {
        std::process::exit(1);
    }
    eprintln!(
        "e19: PASS — explorer {} > matrix {} buckets, no violations",
        outcome.coverage.len(),
        matrix_cov.len()
    );
}

fn history_json(h: &[(usize, usize)]) -> String {
    let pts: Vec<String> = h.iter().map(|(e, c)| format!("[{e}, {c}]")).collect();
    format!("[{}]", pts.join(", "))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `results/e19.json`: config, both growth curves, the verdict, and every
/// minimized failure (hand-rolled JSON; the workspace has no serde).
fn bucket_list_json(cov: &CoverageMap) -> String {
    let items: Vec<String> = cov
        .iter()
        .map(|(m, b)| format!("[\"{}\", {b}]", json_escape(m)))
        .collect();
    format!("[{}]", items.join(", "))
}

fn report_json(
    cfg: &ExploreConfig,
    matrix_cov: &CoverageMap,
    matrix_history: &[(usize, usize)],
    outcome: &ExploreOutcome,
) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"experiment\": \"e19\",\n");
    s.push_str(&format!("  \"budget\": {},\n", cfg.budget));
    s.push_str(&format!("  \"steps\": {},\n", cfg.steps));
    s.push_str(&format!("  \"base_seed\": {},\n", cfg.base_seed));
    s.push_str(&format!(
        "  \"scenarios\": [{}],\n",
        cfg.scenarios
            .iter()
            .map(|sc| format!("\"{}\"", sc.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    s.push_str(&format!(
        "  \"matrix\": {{\"buckets\": {}, \"history\": {}, \"reached\": {}}},\n",
        matrix_cov.len(),
        history_json(matrix_history),
        bucket_list_json(matrix_cov)
    ));
    s.push_str(&format!(
        "  \"explorer\": {{\"buckets\": {}, \"executions\": {}, \"corpus\": {}, \"history\": {}, \
         \"reached\": {}}},\n",
        outcome.coverage.len(),
        outcome.executions,
        outcome.corpus.len(),
        history_json(&outcome.history),
        bucket_list_json(&outcome.coverage)
    ));
    s.push_str(&format!(
        "  \"explorer_beats_matrix\": {},\n",
        outcome.coverage.len() > matrix_cov.len()
    ));
    s.push_str("  \"failures\": [\n");
    for (i, f) in outcome.failures.iter().enumerate() {
        let cx = match &f.verdict.counterexample {
            Some(text) => format!(", \"counterexample\": \"{}\"", json_escape(text)),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"genome\": {}, \"violations\": {}{}}}{}\n",
            f.genome.to_json(),
            f.verdict.violations,
            cx,
            if i + 1 < outcome.failures.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// `results/e19_corpus.json`: every interesting schedule as a replayable
/// genome, with the novelty it contributed when found.
fn corpus_json(outcome: &ExploreOutcome) -> String {
    let mut s = String::from("{\n  \"corpus\": [\n");
    for (i, e) in outcome.corpus.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"genome\": {}, \"novelty\": {}, \"violations\": {}}}{}\n",
            e.genome.to_json(),
            e.novelty,
            e.violations,
            if i + 1 < outcome.corpus.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
