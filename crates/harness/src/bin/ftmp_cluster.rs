//! ftmp-cluster — N real OS processes, one FTMP member each, checked by
//! the same seven oracles as the simulator (E18).
//!
//! The parent process resolves one transport for the whole cluster (probe
//! multicast once, fall back to TCP uniformly — a mixed cluster would
//! partition), picks a shared clock epoch, and spawns itself with the
//! `member` subcommand once per member. The scripted schedule, relative to
//! the epoch:
//!
//! ```text
//! t=0        founders P1..P3 up, steady traffic from t=300ms
//! t=1200ms   P4 spawns as a joiner; P1 sponsors it (retrying AddProcessor)
//! t=2200ms   P2 is kill -9'd mid-traffic
//! t=2600ms   P2 restarts (incarnation 1): recovers its durable log,
//!            resumes its request counter past everything it already
//!            delivered, rejoins via P1's sponsorship
//! t=duration everyone stops, drains, writes trace + metrics + report
//! ```
//!
//! Each member records its observation stream with `ftmp-runtime`'s trace
//! writer; the parent replays every trace file through
//! `ftmp_check::replay` and requires all seven oracles clean. A simulator
//! CrashRestart cell runs alongside as the parity baseline, and everything
//! lands in `results/e18.json`.

use bytes::Bytes;
use ftmp_check::replay::{read_trace_dir, replay_traces};
use ftmp_check::{run_cell, seed_budget, Scenario};
use ftmp_core::actions::ProtocolEvent;
use ftmp_core::config::ProtocolConfig;
use ftmp_core::ids::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum};
use ftmp_net::McastAddr;
use ftmp_runtime::{node, transport};
use std::fmt::Write as _;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::path::{Path, PathBuf};
use std::process::{Child, Command as Proc};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const GROUP: GroupId = GroupId(1);
const GROUP_ADDR: McastAddr = McastAddr(0x4654_4D50);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 10), ObjectGroupId::new(1, 20))
}

// The scripted fault schedule (epoch-relative, milliseconds).
const T_SEND_START: u64 = 300;
/// The joiner process spawns this long before its sponsorship, so its
/// sockets are subscribed before the join view is announced.
const T_SPAWN_JOINER: u64 = 900;
const T_JOIN: u64 = 1_200;
const T_KILL: u64 = 2_200;
const T_RESTART: u64 = 2_600;
const T_READD: u64 = 2_700;
/// Sends stop this long before the end so orders converge under silence.
const QUIESCE_MS: u64 = 900;

fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

fn arg_val(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn arg_u64(args: &[String], key: &str, default: u64) -> u64 {
    arg_val(args, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("member") {
        std::process::exit(run_member(&args[1..]));
    }
    std::process::exit(run_parent(&args));
}

// --- member process ---------------------------------------------------------

struct MemberArgs {
    id: u32,
    founders: Vec<u32>,
    all_ids: Vec<u32>,
    epoch_us: u64,
    port_base: u16,
    tcp: bool,
    fell_back: bool,
    dir: PathBuf,
    duration_ms: u64,
    rate_ms: u64,
    joiner: bool,
    restart: bool,
    incarnation: u32,
    /// `id@ms` sponsorships this member performs.
    adds: Vec<(u32, u64)>,
}

fn parse_member(args: &[String]) -> MemberArgs {
    let ids = |s: String| -> Vec<u32> { s.split(',').filter_map(|t| t.parse().ok()).collect() };
    MemberArgs {
        id: arg_u64(args, "--id", 0) as u32,
        founders: ids(arg_val(args, "--founders").unwrap_or_default()),
        all_ids: ids(arg_val(args, "--all").unwrap_or_default()),
        epoch_us: arg_u64(args, "--epoch-us", 0),
        port_base: arg_u64(args, "--port-base", 47_700) as u16,
        tcp: args.iter().any(|a| a == "--tcp"),
        fell_back: args.iter().any(|a| a == "--fell-back"),
        dir: PathBuf::from(arg_val(args, "--dir").expect("--dir required")),
        duration_ms: arg_u64(args, "--duration-ms", 4_500),
        rate_ms: arg_u64(args, "--rate-ms", 25),
        joiner: args.iter().any(|a| a == "--joiner"),
        restart: args.iter().any(|a| a == "--restart"),
        incarnation: arg_u64(args, "--incarnation", 0) as u32,
        adds: args
            .iter()
            .zip(args.iter().skip(1))
            .filter(|(k, _)| *k == "--add")
            .filter_map(|(_, v)| {
                let (id, ms) = v.split_once('@')?;
                Some((id.parse().ok()?, ms.parse().ok()?))
            })
            .collect(),
    }
}

fn tcp_port(port_base: u16, id: u32) -> u16 {
    port_base + 1 + id as u16
}

#[allow(clippy::too_many_lines)]
fn run_member(args: &[String]) -> i32 {
    let a = parse_member(args);
    let clock = node::RuntimeClock::with_unix_epoch(a.epoch_us);
    let id = ProcessorId(a.id);

    // Durable delivery log: every member persists; a restart recovers the
    // log first and resumes its request counter past every request its
    // previous incarnation already delivered (exactly-once across kill -9).
    let log_dir = a.dir.join(format!("logs/P{}", a.id));
    let mut recovered_records = 0u64;
    let mut recover_us = 0u64;
    if a.restart {
        let t0 = Instant::now();
        match ftmp_store::recover(&log_dir) {
            Ok(rec) => {
                recover_us = t0.elapsed().as_micros() as u64;
                recovered_records = rec.records.len() as u64;
                // The recovered per-connection delivery sets tell the new
                // incarnation what it already executed; what they can NOT
                // tell it is which of its old in-flight requests the
                // *survivors* went on to deliver after the crash. Request
                // numbers therefore carry the incarnation (an FT-CORBA
                // retry-id epoch): the new life never reuses a number, so
                // the group's duplicate suppression — which rightly drops
                // any reused (conn, request) — never splits the order.
                let state = ftmp_store::RecoveredState::from_records(&rec.records);
                let own = state
                    .per_conn
                    .get(&conn())
                    .map(|reqs| {
                        reqs.iter()
                            .filter(|r| r.0 / 1_000_000 == u64::from(a.id))
                            .count()
                    })
                    .unwrap_or(0);
                eprintln!(
                    "P{}: recovered {} records ({} own deliveries) in {}us",
                    a.id, recovered_records, own, recover_us
                );
            }
            Err(e) => {
                eprintln!("P{}: recover failed: {e}", a.id);
                return 3;
            }
        }
    }
    std::fs::create_dir_all(&log_dir).expect("create log dir");
    let dlog =
        ftmp_store::DurableLog::open(&log_dir, ftmp_store::LogConfig::default()).expect("open log");

    let (rxq, rx) = transport::rx_channel();
    let udp = transport::UdpConfig {
        port: a.port_base,
        ..transport::UdpConfig::default()
    };
    let selected = if a.tcp {
        let listener = ftmp_runtime::sys::tcp_listener_reuse(SocketAddrV4::new(
            Ipv4Addr::LOCALHOST,
            tcp_port(a.port_base, a.id),
        ))
        .expect("bind mesh listener");
        let peers: Vec<SocketAddr> = a
            .all_ids
            .iter()
            .filter(|&&p| p != a.id)
            .map(|&p| {
                SocketAddr::V4(SocketAddrV4::new(
                    Ipv4Addr::LOCALHOST,
                    tcp_port(a.port_base, p),
                ))
            })
            .collect();
        let mut sel = transport::open_transport(
            transport::TransportSpec {
                mode: transport::TransportMode::TcpMesh,
                udp,
                tcp: Some(transport::TcpConfig::new(listener, peers)),
            },
            rxq,
        )
        .expect("open tcp mesh");
        // The parent made the fallback decision for the whole cluster;
        // carry it into this member's counters.
        sel.fell_back = a.fell_back;
        sel
    } else {
        transport::open_transport(
            transport::TransportSpec {
                mode: transport::TransportMode::UdpMulticast,
                udp,
                tcp: None,
            },
            rxq,
        )
        .expect("open udp multicast")
    };
    let kind = selected.kind;

    let trace = ftmp_runtime::TraceWriter::create(
        a.dir
            .join(format!("trace-P{}-i{}.trc", a.id, a.incarnation)),
        a.id,
        a.incarnation,
    )
    .expect("create trace");

    let mut cfg = if a.joiner {
        node::NodeConfig::joiner(id, GROUP, GROUP_ADDR)
    } else {
        node::NodeConfig::founder(
            id,
            GROUP,
            GROUP_ADDR,
            a.founders.iter().map(|&p| ProcessorId(p)).collect(),
        )
    };
    cfg.protocol = ProtocolConfig::default();
    cfg.incarnation = a.incarnation;
    cfg.clock = clock.clone();
    cfg.connection = Some((conn(), GROUP));
    cfg.stop_grace = Duration::from_millis(300);
    let handle = node::spawn(
        cfg,
        node::NodeParts {
            transport: selected,
            rx,
            dlog: Some(Box::new(dlog)),
            trace: Some(trace),
        },
    );

    // Scripted member loop: publish on cadence, sponsor scheduled adds,
    // sample end-to-end latency off the delivery stream.
    let mut joined = !a.joiner;
    let mut adds = a.adds.clone();
    let mut published = 0u64;
    let mut lat_us: Vec<u64> = Vec::new();
    let mut next_send_ms = T_SEND_START.max(clock.now().0 / 1_000 + a.rate_ms);
    let send_until = a.duration_ms.saturating_sub(QUIESCE_MS);
    loop {
        let now_ms = clock.now().0 / 1_000;
        if now_ms >= a.duration_ms {
            break;
        }
        while let Ok((_, ev)) = handle.events.recv_timeout(Duration::ZERO) {
            if matches!(ev, ProtocolEvent::JoinedGroup { .. }) {
                joined = true;
            }
        }
        while let Ok((at, d)) = handle.deliveries.recv_timeout(Duration::ZERO) {
            if d.giop.len() >= 8 {
                let sent = u64::from_le_bytes(d.giop[..8].try_into().unwrap());
                lat_us.push(at.0.saturating_sub(sent));
            }
        }
        adds.retain(|&(member, at_ms)| {
            if now_ms >= at_ms {
                handle.command(node::Command::AddMember(ProcessorId(member)));
                false
            } else {
                true
            }
        });
        if joined && now_ms >= next_send_ms && now_ms < send_until {
            let mut giop = clock.now().0.to_le_bytes().to_vec();
            giop.resize(64, a.id as u8);
            // id * 1M + incarnation * 100k + counter: request numbers are
            // globally unique across processes AND across one process's
            // incarnations (see the recovery comment above).
            let req = u64::from(a.id) * 1_000_000 + u64::from(a.incarnation) * 100_000 + published;
            handle.publish(conn(), RequestNum(req), Bytes::from(giop));
            published += 1;
            next_send_ms += a.rate_ms;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let report = handle.stop();

    lat_us.sort_unstable();
    let pct = |p: f64| -> u64 {
        if lat_us.is_empty() {
            0
        } else {
            lat_us[((lat_us.len() - 1) as f64 * p) as usize]
        }
    };
    let mut txt = String::new();
    let _ = writeln!(txt, "id={}", a.id);
    let _ = writeln!(txt, "incarnation={}", a.incarnation);
    let _ = writeln!(txt, "transport={}", kind.label());
    let _ = writeln!(txt, "fell_back={}", report.fell_back);
    let _ = writeln!(txt, "published={published}");
    let _ = writeln!(txt, "delivered={}", report.delivered);
    let _ = writeln!(txt, "sent_datagrams={}", report.sent_datagrams);
    let _ = writeln!(txt, "recv_datagrams={}", report.recv_datagrams);
    let _ = writeln!(txt, "publish_rejected={}", report.publish_rejected);
    let _ = writeln!(txt, "ticks={}", report.ticks);
    let _ = writeln!(txt, "lat_samples={}", lat_us.len());
    let _ = writeln!(txt, "lat_p50_us={}", pct(0.50));
    let _ = writeln!(txt, "lat_p99_us={}", pct(0.99));
    let _ = writeln!(txt, "recovered_records={recovered_records}");
    let _ = writeln!(txt, "recover_us={recover_us}");
    let _ = writeln!(
        txt,
        "final_members={}",
        report
            .final_members
            .iter()
            .map(|p| p.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    std::fs::write(
        a.dir
            .join(format!("report-P{}-i{}.txt", a.id, a.incarnation)),
        txt,
    )
    .expect("write report");
    std::fs::write(
        a.dir
            .join(format!("metrics-P{}-i{}.json", a.id, a.incarnation)),
        report.metrics.to_json() + "\n",
    )
    .expect("write metrics");
    0
}

// --- parent process ---------------------------------------------------------

struct SeedOutcome {
    seed: u64,
    transport: &'static str,
    fell_back: bool,
    files: usize,
    observed: u64,
    delivered: u64,
    violations: u64,
    rejoins: u32,
    recovered_records: u64,
    deliveries_per_sec: f64,
    lat_p50_us: u64,
    lat_p99_us: u64,
    first_counterexample: Option<String>,
}

fn spawn_member(
    exe: &Path,
    dir: &Path,
    base: &[String],
    extra: &[String],
) -> std::io::Result<Child> {
    Proc::new(exe)
        .arg("member")
        .args(base)
        .args(extra)
        .arg("--dir")
        .arg(dir)
        .spawn()
}

#[allow(clippy::too_many_lines)]
fn run_parent(args: &[String]) -> i32 {
    let founders = 3u32;
    let joiner_id = 4u32;
    let victim = 2u32;
    let duration_ms = arg_u64(args, "--duration-ms", 4_500);
    let rate_ms = arg_u64(args, "--rate-ms", 25);
    let port_base = arg_u64(args, "--port-base", 47_700) as u16;
    let force_tcp = args.iter().any(|a| a == "--tcp");
    let out_dir = PathBuf::from(arg_val(args, "--dir").unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("ftmp-cluster-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }));
    let out_json = arg_val(args, "--out").unwrap_or_else(|| "results/e18.json".into());
    let seeds = seed_budget(1).min(4);
    let exe = std::env::current_exe().expect("current_exe");

    let all_ids: Vec<u32> = (1..=founders).chain([joiner_id]).collect();
    let founder_list = (1..=founders)
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let all_list = all_ids
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let mut outcomes: Vec<SeedOutcome> = Vec::new();
    for seed in 0..seeds {
        let run_dir = out_dir.join(format!("seed{seed}"));
        std::fs::create_dir_all(&run_dir).expect("create run dir");
        let run_port = port_base + (seed as u16) * 8;

        // One transport decision for the whole cluster: a mixed cluster
        // would partition.
        let udp = transport::UdpConfig {
            port: run_port,
            ..transport::UdpConfig::default()
        };
        let multicast = !force_tcp && transport::multicast_available(&udp);
        let fell_back = !force_tcp && !multicast;
        let (t_label, mut t_flags) = if multicast {
            ("udp-multicast", vec![])
        } else {
            ("tcp-mesh", vec!["--tcp".to_string()])
        };
        if fell_back {
            t_flags.push("--fell-back".to_string());
        }
        println!(
            "[e18 seed {seed}] transport={t_label}{} port-base={run_port} dir={}",
            if fell_back { " (fell back)" } else { "" },
            run_dir.display()
        );

        let epoch_us = unix_micros() + 200_000;
        let epoch_at = Instant::now() + Duration::from_millis(200);
        let base: Vec<String> = [
            "--founders",
            &founder_list,
            "--all",
            &all_list,
            "--epoch-us",
            &epoch_us.to_string(),
            "--port-base",
            &run_port.to_string(),
            "--duration-ms",
            &duration_ms.to_string(),
            "--rate-ms",
            &rate_ms.to_string(),
        ]
        .iter()
        .map(|s| s.to_string())
        .chain(t_flags.iter().cloned())
        .collect();

        let mut children: Vec<(u32, Child)> = Vec::new();
        for fid in 1..=founders {
            let mut extra = vec!["--id".to_string(), fid.to_string()];
            if fid == 1 {
                // P1 sponsors the joiner and the restarted victim.
                extra.extend(["--add".into(), format!("{joiner_id}@{T_JOIN}")]);
                extra.extend(["--add".into(), format!("{victim}@{T_READD}")]);
            }
            children.push((
                fid,
                spawn_member(&exe, &run_dir, &base, &extra).expect("spawn founder"),
            ));
        }

        let until = |ms: u64| {
            let target = epoch_at + Duration::from_millis(ms);
            let now = Instant::now();
            if target > now {
                std::thread::sleep(target - now);
            }
        };

        until(T_SPAWN_JOINER);
        children.push((
            joiner_id,
            spawn_member(
                &exe,
                &run_dir,
                &base,
                &[
                    "--id".to_string(),
                    joiner_id.to_string(),
                    "--joiner".to_string(),
                ],
            )
            .expect("spawn joiner"),
        ));

        until(T_KILL);
        let v = children
            .iter_mut()
            .find(|(id, _)| *id == victim)
            .expect("victim child");
        v.1.kill().expect("kill -9 victim");
        println!("[e18 seed {seed}] killed P{victim} (SIGKILL)");

        until(T_RESTART);
        children.push((
            victim,
            spawn_member(
                &exe,
                &run_dir,
                &base,
                &[
                    "--id".to_string(),
                    victim.to_string(),
                    "--joiner".to_string(),
                    "--restart".to_string(),
                    "--incarnation".to_string(),
                    "1".to_string(),
                ],
            )
            .expect("respawn victim"),
        ));

        let mut ok = true;
        for (id, mut child) in children {
            let status = child.wait().expect("wait child");
            if !status.success() && id != victim {
                eprintln!("[e18 seed {seed}] P{id} exited with {status}");
                ok = false;
            }
        }
        if !ok {
            eprintln!("[e18 seed {seed}] member failure; aborting");
            return 2;
        }

        // Replay every member trace through the seven oracles.
        let files = read_trace_dir(&run_dir).expect("read traces");
        let founder_ids: Vec<ProcessorId> = (1..=founders).map(ProcessorId).collect();
        let live: Vec<ProcessorId> = all_ids.iter().map(|&i| ProcessorId(i)).collect();
        let report = replay_traces(GROUP, &founder_ids, &files, &live);
        println!(
            "[e18 seed {seed}] replay: files={} observed={} delivered={} rejoins={} violations={}",
            report.files, report.observed, report.delivered, report.rejoins, report.violations
        );
        if let Some(cex) = &report.first_counterexample {
            eprintln!("{cex}");
        }

        // Aggregate member self-reports.
        let mut recovered_records = 0u64;
        let mut lat_p50 = Vec::new();
        let mut lat_p99 = Vec::new();
        for entry in std::fs::read_dir(&run_dir).expect("read run dir") {
            let path = entry.expect("dir entry").path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !(name.starts_with("report-") && name.ends_with(".txt")) {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("read member report");
            let field = |k: &str| -> u64 {
                text.lines()
                    .find_map(|l| l.strip_prefix(&format!("{k}=")))
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0)
            };
            recovered_records += field("recovered_records");
            if field("lat_samples") > 0 {
                lat_p50.push(field("lat_p50_us"));
                lat_p99.push(field("lat_p99_us"));
            }
        }
        lat_p50.sort_unstable();
        lat_p99.sort_unstable();
        let traffic_secs = (duration_ms.saturating_sub(QUIESCE_MS)) as f64 / 1_000.0;
        outcomes.push(SeedOutcome {
            seed,
            transport: t_label,
            fell_back,
            files: report.files,
            observed: report.observed,
            delivered: report.delivered,
            violations: report.violations,
            rejoins: report.rejoins,
            recovered_records,
            deliveries_per_sec: report.delivered as f64 / traffic_secs,
            lat_p50_us: lat_p50.get(lat_p50.len() / 2).copied().unwrap_or(0),
            lat_p99_us: lat_p99.last().copied().unwrap_or(0),
            first_counterexample: report.first_counterexample.clone(),
        });
    }

    // Simulator parity baseline: the same fault shape (crash + durable-log
    // restart) through the same oracles, in virtual time. Parameters match
    // the pinned conformance cell.
    let sim = run_cell(Scenario::CrashRestart, 0x5EED, 36, 4096);
    println!(
        "[e18 sim] crash-restart cell: observed={} delivered={} violations={}",
        sim.observations, sim.delivered, sim.violations
    );

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"e18-cluster\",\n");
    let _ = writeln!(
        j,
        "  \"schedule\": {{\"members\": {founders}, \"join_ms\": {T_JOIN}, \"kill9_ms\": {T_KILL}, \"restart_ms\": {T_RESTART}, \"duration_ms\": {duration_ms}, \"rate_ms\": {rate_ms}}},"
    );
    let _ = writeln!(
        j,
        "  \"sim_baseline\": {{\"scenario\": \"{}\", \"observed\": {}, \"delivered\": {}, \"violations\": {}}},",
        sim.scenario, sim.observations, sim.delivered, sim.violations
    );
    j.push_str("  \"runs\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"seed\": {}, \"transport\": \"{}\", \"fell_back\": {}, \"trace_files\": {}, \
             \"observed\": {}, \"delivered\": {}, \"violations\": {}, \"rejoins\": {}, \
             \"recovered_records\": {}, \"deliveries_per_sec\": {:.0}, \
             \"e2e_p50_us\": {}, \"e2e_p99_us\": {}, \"counterexample\": {}}}{}",
            o.seed,
            o.transport,
            o.fell_back,
            o.files,
            o.observed,
            o.delivered,
            o.violations,
            o.rejoins,
            o.recovered_records,
            o.deliveries_per_sec,
            o.lat_p50_us,
            o.lat_p99_us,
            match &o.first_counterexample {
                Some(c) => format!("{:?}", c.replace(['\n', '"'], " ")),
                None => "null".to_string(),
            },
            if i + 1 < outcomes.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    if let Some(parent) = Path::new(&out_json).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(&out_json, &j).expect("write e18 json");
    println!("{j}");

    if let Ok(mdir) = std::env::var("FTMP_METRICS_DIR") {
        // Merge every member's runtime-layer snapshot into one registry.
        let mut reg = ftmp_telemetry::Registry::new();
        let c_runs = reg.counter("e18_runs");
        reg.inc(c_runs, outcomes.len() as u64);
        let c_viol = reg.counter("e18_violations");
        reg.inc(c_viol, outcomes.iter().map(|o| o.violations).sum());
        let c_deliv = reg.counter("e18_delivered");
        reg.inc(c_deliv, outcomes.iter().map(|o| o.delivered).sum());
        std::fs::create_dir_all(&mdir).expect("metrics dir");
        std::fs::write(
            Path::new(&mdir).join("e18_metrics.json"),
            reg.snapshot().to_json() + "\n",
        )
        .expect("write e18 metrics");
        // Member snapshots ride along verbatim.
        for o in &outcomes {
            let run_dir = out_dir.join(format!("seed{}", o.seed));
            if let Ok(entries) = std::fs::read_dir(&run_dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name().to_string_lossy().into_owned();
                    if name.starts_with("metrics-") && name.ends_with(".json") {
                        let dst = Path::new(&mdir).join(format!("e18_seed{}_{}", o.seed, name));
                        let _ = std::fs::copy(entry.path(), dst);
                    }
                }
            }
        }
    }

    let total_violations: u64 = outcomes.iter().map(|o| o.violations).sum();
    if total_violations > 0 || sim.violations > 0 {
        eprintln!("e18: ORACLE VIOLATIONS DETECTED");
        return 1;
    }
    println!(
        "e18: clean — {} seed(s), sim parity clean, transport(s): {}",
        outcomes.len(),
        outcomes
            .iter()
            .map(|o| o.transport)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
            .join(", ")
    );
    0
}
