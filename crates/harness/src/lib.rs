#![warn(missing_docs)]
//! Experiment harness: workloads, sweeps, metrics and table printers.
//!
//! The ICPP 1999 FTMP paper contains no quantitative evaluation — its three
//! figures are structural. This crate regenerates those figures *empirically*
//! (F1–F3) and builds the performance experiments the text motivates
//! (E1–E12); see DESIGN.md §6 for the experiment index and EXPERIMENTS.md for
//! recorded results. Every experiment prints a human-readable table and can
//! dump machine-readable JSON.
//!
//! Run them with the `ftmp-exp` binary:
//!
//! ```text
//! cargo run -p ftmp-harness --release --bin ftmp-exp -- --exp all
//! cargo run -p ftmp-harness --release --bin ftmp-exp -- --exp e1 --json results/
//! ```

pub mod experiments;
pub mod metrics;
pub mod report;
pub mod worlds;

pub use metrics::LatencyStats;
pub use report::Table;
pub use worlds::{BaselineWorld, FtmpWorld, OrbWorld};
