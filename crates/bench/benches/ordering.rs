//! Protocol hot paths: the ROMP ordering queue, RMP receive window,
//! retention store and duplicate detector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftmp_core::rmp::{RetentionStore, SourceRx};
use ftmp_core::romp::Ordering;
use ftmp_core::wire::FtmpBody;
use ftmp_core::{FtmpMessage, GroupId, ProcessorId, SeqNum, Timestamp};
use ftmp_net::{SimDuration, SimTime};
use ftmp_orb::DuplicateDetector;
use std::hint::black_box;

fn msg(src: u32, seq: u64, ts: u64) -> FtmpMessage {
    FtmpMessage {
        retransmission: false,
        source: ProcessorId(src),
        group: GroupId(1),
        seq: SeqNum(seq),
        ts: Timestamp(ts),
        ack_ts: Timestamp(ts.saturating_sub(5)),
        body: FtmpBody::Heartbeat,
    }
}

fn bench_ordering_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("romp_ordering");
    for members in [4u32, 16, 64] {
        g.throughput(Throughput::Elements(256));
        g.bench_with_input(
            BenchmarkId::new("enqueue_deliver_256", members),
            &members,
            |b, &n| {
                b.iter(|| {
                    let mut ord = Ordering::new((1..=n).map(ProcessorId), Timestamp(0));
                    let mut delivered = 0usize;
                    for k in 0..256u64 {
                        let src = (k % u64::from(n)) as u32 + 1;
                        let ts = k + 1;
                        ord.advance_horizon(ProcessorId(src), Timestamp(ts));
                        ord.enqueue(msg(src, k / u64::from(n) + 1, ts));
                        // Everyone else heartbeats to the same ts.
                        for p in 1..=n {
                            ord.advance_horizon(ProcessorId(p), Timestamp(ts));
                        }
                        delivered += ord.deliverable().len();
                    }
                    black_box(delivered)
                })
            },
        );
    }
    g.finish();
}

fn bench_rmp_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("rmp_window");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("in_order_1024", |b| {
        b.iter(|| {
            let mut rx = SourceRx::starting_at(1);
            for seq in 1..=1024u64 {
                black_box(rx.on_reliable(msg(1, seq, seq)));
            }
        })
    });
    g.bench_function("reversed_1024", |b| {
        b.iter(|| {
            let mut rx = SourceRx::starting_at(1);
            for seq in (1..=1024u64).rev() {
                black_box(rx.on_reliable(msg(1, seq, seq)));
            }
        })
    });
    g.bench_function("missing_ranges_sparse", |b| {
        let mut rx = SourceRx::starting_at(1);
        for seq in (1..2048u64).step_by(3) {
            rx.on_reliable(msg(1, seq, seq));
        }
        rx.note_header_seq(SeqNum(2048));
        b.iter(|| black_box(rx.missing_ranges(64)))
    });
    g.finish();
}

fn bench_retention(c: &mut Criterion) {
    let mut g = c.benchmark_group("retention");
    let wire = |m: &FtmpMessage| m.encode(ftmp_cdr::ByteOrder::native());
    g.bench_function("insert_reclaim_1024", |b| {
        let frames: Vec<_> = (1..=1024u64)
            .map(|seq| {
                let m = msg((seq % 8) as u32 + 1, seq, seq);
                let w = wire(&m);
                (m, w)
            })
            .collect();
        b.iter(|| {
            let mut store = RetentionStore::default();
            for (m, w) in &frames {
                store.insert(m.clone(), w.clone());
            }
            black_box(store.reclaim_stable(Timestamp(512)));
            black_box(store.len())
        })
    });
    g.bench_function("take_for_retransmit", |b| {
        let mut store = RetentionStore::default();
        for seq in 1..=1024u64 {
            let m = msg(1, seq, seq);
            let w = wire(&m);
            store.insert(m, w);
        }
        let mut t = 0u64;
        b.iter(|| {
            t += 10_000;
            black_box(store.take_for_retransmit(
                ProcessorId(1),
                t % 1024 + 1,
                SimTime(t),
                SimDuration::from_millis(4),
            ))
        })
    });
    g.finish();
}

fn bench_dup_detector(c: &mut Criterion) {
    let conn = ftmp_core::ConnectionId::new(
        ftmp_core::ObjectGroupId::new(1, 1),
        ftmp_core::ObjectGroupId::new(1, 2),
    );
    let mut g = c.benchmark_group("dup_detector");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("first_sightings_1000", |b| {
        b.iter(|| {
            let mut d = DuplicateDetector::default();
            for n in 1..=1000u64 {
                black_box(d.first_sighting(conn, ftmp_core::RequestNum(n)));
            }
        })
    });
    g.bench_function("duplicate_probes_1000", |b| {
        let mut d = DuplicateDetector::default();
        for n in 1..=1000u64 {
            d.first_sighting(conn, ftmp_core::RequestNum(n));
        }
        b.iter(|| {
            for n in 1..=1000u64 {
                black_box(d.seen(conn, ftmp_core::RequestNum(n)));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ordering_queue,
    bench_rmp_window,
    bench_retention,
    bench_dup_detector
);
criterion_main!(benches);
