//! Whole-protocol simulation benches: wall-clock CPU cost of pushing one
//! round of totally-ordered traffic through each protocol on the
//! deterministic simulator (FTMP vs the §8 baselines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftmp_baselines::sequencer::{SequencerConfig, SequencerNode};
use ftmp_baselines::token_ring::{RingConfig, TokenRingNode};
use ftmp_core::{ClockMode, ProtocolConfig};
use ftmp_harness::worlds::{BaselineWorld, FtmpWorld};
use ftmp_net::{McastAddr, SimConfig};
use std::hint::black_box;

const MSGS: u64 = 60;

fn ftmp_round(n: u32) -> usize {
    let mut w = FtmpWorld::new(
        n,
        SimConfig::with_seed(1),
        ProtocolConfig::with_seed(1),
        ClockMode::Lamport,
    );
    for k in 0..MSGS {
        w.send((k % u64::from(n)) as u32 + 1, 128);
        w.run_ms(1);
    }
    w.run_ms(100);
    w.collect().delivered()
}

fn sequencer_round(n: u32) -> usize {
    let addr = McastAddr(1);
    let mut w = BaselineWorld::new_with(n, SimConfig::with_seed(1), addr, |id, members| {
        SequencerNode::new(id, SequencerConfig::new(addr, members))
    });
    for k in 0..MSGS {
        w.submit((k % u64::from(n)) as u32 + 1, 128);
    }
    let res = w.run_collect(200, 5);
    res.sequences[0].len()
}

fn ring_round(n: u32) -> usize {
    let addr = McastAddr(2);
    let mut w = BaselineWorld::new_with(n, SimConfig::with_seed(1), addr, |id, members| {
        TokenRingNode::new(id, RingConfig::new(addr, members))
    });
    for k in 0..MSGS {
        w.submit((k % u64::from(n)) as u32 + 1, 128);
    }
    let res = w.run_collect(400, 5);
    res.sequences[0].len()
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_sim_round");
    g.sample_size(20);
    for n in [3u32, 8] {
        g.throughput(Throughput::Elements(MSGS));
        g.bench_with_input(BenchmarkId::new("ftmp", n), &n, |b, &n| {
            b.iter(|| black_box(ftmp_round(n)))
        });
        g.bench_with_input(BenchmarkId::new("sequencer", n), &n, |b, &n| {
            b.iter(|| black_box(sequencer_round(n)))
        });
        g.bench_with_input(BenchmarkId::new("token_ring", n), &n, |b, &n| {
            b.iter(|| black_box(ring_round(n)))
        });
    }
    g.finish();
}

fn bench_loss_recovery(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftmp_loss_recovery");
    g.sample_size(15);
    for loss_pct in [0u32, 10] {
        g.bench_with_input(BenchmarkId::new("60_msgs", loss_pct), &loss_pct, |b, &p| {
            b.iter(|| {
                let sim = SimConfig::with_seed(2).loss(ftmp_net::LossModel::Iid {
                    p: f64::from(p) / 100.0,
                });
                let mut w =
                    FtmpWorld::new(4, sim, ProtocolConfig::with_seed(2), ClockMode::Lamport);
                for k in 0..MSGS {
                    w.send((k % 4) as u32 + 1, 128);
                    w.run_ms(1);
                }
                w.run_ms(500);
                black_box(w.collect().delivered())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols, bench_loss_recovery);
criterion_main!(benches);
