//! End-to-end benches: a complete replicated CORBA invocation (connection
//! already established) through ORB → FTMP → simulator and back, and the
//! ORB-layer CPU cost in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ftmp_core::ProtocolConfig;
use ftmp_harness::worlds::OrbWorld;
use ftmp_net::{SimConfig, SimDuration};
use ftmp_orb::servant::encode_i64_arg;
use ftmp_orb::{giop_map, OrbEndpoint};
use std::hint::black_box;

fn bench_invocation_rtt(c: &mut Criterion) {
    let mut g = c.benchmark_group("orb_invocation");
    g.sample_size(15);
    for (k, m) in [(1u32, 3u32), (3, 3)] {
        g.bench_with_input(
            BenchmarkId::new("rtt", format!("{k}x{m}")),
            &(k, m),
            |b, &(k, m)| {
                // Build once; each iteration performs one full invocation in
                // simulated time (the CPU cost is the protocol machinery).
                let mut w = OrbWorld::new(
                    k,
                    m,
                    SimConfig::with_seed(9),
                    ProtocolConfig::with_seed(9).heartbeat(SimDuration::from_millis(2)),
                    || Box::new(ftmp_orb::Counter::default()),
                );
                b.iter(|| {
                    w.invoke_all("add", 1);
                    loop {
                        w.net.run_for(SimDuration::from_micros(500));
                        let (done, _) = w.drain_completions();
                        if !done.is_empty() {
                            break black_box(done.len());
                        }
                    }
                })
            },
        );
    }
    g.finish();
}

fn bench_orb_layer(c: &mut Criterion) {
    let mut g = c.benchmark_group("orb_layer");
    let og = ftmp_core::ObjectGroupId::new(2, 7);
    let conn = ftmp_core::ConnectionId::new(ftmp_core::ObjectGroupId::new(1, 1), og);
    g.bench_function("serve_request", |b| {
        let mut server = OrbEndpoint::new();
        server.host_replica(og, b"obj".to_vec(), Box::new(ftmp_orb::Counter::default()));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let giop = giop_map::make_request(
                ftmp_core::RequestNum(n),
                b"obj",
                "add",
                &encode_i64_arg(1),
                true,
            );
            server.on_delivery(&ftmp_core::Delivery {
                group: ftmp_core::GroupId(1),
                conn,
                request_num: ftmp_core::RequestNum(n),
                source: ftmp_core::ProcessorId(1),
                seq: ftmp_core::SeqNum(n),
                ts: ftmp_core::Timestamp(n),
                giop: bytes::Bytes::from(giop),
            });
            black_box(server.drain_outbound().len())
        })
    });
    g.bench_function("suppress_duplicate", |b| {
        let mut server = OrbEndpoint::new();
        server.host_replica(og, b"obj".to_vec(), Box::new(ftmp_orb::Counter::default()));
        let giop = giop_map::make_request(
            ftmp_core::RequestNum(1),
            b"obj",
            "add",
            &encode_i64_arg(1),
            true,
        );
        let d = ftmp_core::Delivery {
            group: ftmp_core::GroupId(1),
            conn,
            request_num: ftmp_core::RequestNum(1),
            source: ftmp_core::ProcessorId(1),
            seq: ftmp_core::SeqNum(1),
            ts: ftmp_core::Timestamp(1),
            giop: bytes::Bytes::from(giop),
        };
        server.on_delivery(&d);
        server.drain_outbound();
        b.iter(|| {
            server.on_delivery(black_box(&d));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_invocation_rtt, bench_orb_layer);
criterion_main!(benches);
