//! Marshalling microbenches: CDR, GIOP, FTMP wire codecs (the per-message
//! CPU cost of the Fig. 2 encapsulation).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftmp_cdr::{ByteOrder, CdrReader, CdrWriter};
use ftmp_core::wire::{classify, FtmpBody, FtmpMessage};
use ftmp_core::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum, SeqNum, Timestamp};
use ftmp_giop::{GiopMessage, RequestHeader};
use std::hint::black_box;

fn giop_request(payload: usize) -> Vec<u8> {
    GiopMessage::Request {
        header: RequestHeader {
            service_context: vec![],
            request_id: 7,
            response_expected: true,
            object_key: b"bank/account/1".to_vec(),
            operation: "deposit".into(),
            requesting_principal: vec![],
        },
        body: vec![0xAB; payload],
    }
    .encode(ByteOrder::native())
}

fn ftmp_regular(payload: usize) -> FtmpMessage {
    FtmpMessage {
        retransmission: false,
        source: ProcessorId(3),
        group: GroupId(1),
        seq: SeqNum(99),
        ts: Timestamp(12_345),
        ack_ts: Timestamp(12_000),
        body: FtmpBody::Regular {
            conn: ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2)),
            request_num: RequestNum(41),
            giop: Bytes::from(giop_request(payload)),
        },
    }
}

fn bench_cdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdr");
    g.bench_function("write_mixed_stream", |b| {
        b.iter(|| {
            let mut w = CdrWriter::new(ByteOrder::native());
            for i in 0..32u32 {
                w.write_u8(i as u8);
                w.write_u32(i);
                w.write_u64(u64::from(i) << 32);
                w.write_string("operation_name");
            }
            black_box(w.into_bytes())
        })
    });
    let bytes = {
        let mut w = CdrWriter::new(ByteOrder::native());
        for i in 0..32u32 {
            w.write_u8(i as u8);
            w.write_u32(i);
            w.write_u64(u64::from(i) << 32);
            w.write_string("operation_name");
        }
        w.into_bytes()
    };
    g.bench_function("read_mixed_stream", |b| {
        b.iter(|| {
            let mut r = CdrReader::new(&bytes, ByteOrder::native());
            for _ in 0..32 {
                black_box(r.read_u8().unwrap());
                black_box(r.read_u32().unwrap());
                black_box(r.read_u64().unwrap());
                black_box(r.read_string().unwrap());
            }
        })
    });
    g.finish();
}

fn bench_giop(c: &mut Criterion) {
    let mut g = c.benchmark_group("giop");
    for payload in [0usize, 256, 4096] {
        g.throughput(Throughput::Bytes(payload as u64));
        g.bench_with_input(
            BenchmarkId::new("encode_request", payload),
            &payload,
            |b, &p| b.iter(|| black_box(giop_request(p))),
        );
        let encoded = giop_request(payload);
        g.bench_with_input(
            BenchmarkId::new("decode_request", payload),
            &encoded,
            |b, e| b.iter(|| black_box(GiopMessage::decode(e).unwrap())),
        );
    }
    g.finish();
}

fn bench_ftmp_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftmp_wire");
    for payload in [0usize, 256, 4096] {
        let msg = ftmp_regular(payload);
        g.throughput(Throughput::Bytes(payload as u64));
        g.bench_with_input(BenchmarkId::new("encode_regular", payload), &msg, |b, m| {
            b.iter(|| black_box(m.encode(ByteOrder::native())))
        });
        let bytes = msg.encode(ByteOrder::native());
        g.bench_with_input(
            BenchmarkId::new("decode_regular", payload),
            &bytes,
            |b, e| b.iter(|| black_box(FtmpMessage::decode(e).unwrap())),
        );
    }
    let hb = FtmpMessage {
        body: FtmpBody::Heartbeat,
        ..ftmp_regular(0)
    };
    g.bench_function("encode_heartbeat", |b| {
        b.iter(|| black_box(hb.encode(ByteOrder::native())))
    });
    let bytes = ftmp_regular(256).encode(ByteOrder::native());
    g.bench_function("classify", |b| b.iter(|| black_box(classify(&bytes))));
    g.finish();
}

criterion_group!(benches, bench_cdr, bench_giop, bench_ftmp_wire);
criterion_main!(benches);
