//! Marshalling microbenches: CDR, GIOP, FTMP wire codecs (the per-message
//! CPU cost of the Fig. 2 encapsulation).

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ftmp_cdr::{ByteOrder, CdrReader, CdrWriter};
use ftmp_core::wire::{self, classify, AckVector, FtmpBody, FtmpMessage};
use ftmp_core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, PackPolicy, Packing, ProcessorId,
    ProtocolConfig, RequestNum, SeqNum, Timestamp,
};
use ftmp_giop::{GiopMessage, RequestHeader};
use ftmp_harness::worlds::FtmpWorld;
use ftmp_net::{SimConfig, SimDuration};
use std::hint::black_box;

fn giop_request(payload: usize) -> Vec<u8> {
    GiopMessage::Request {
        header: RequestHeader {
            service_context: vec![],
            request_id: 7,
            response_expected: true,
            object_key: b"bank/account/1".to_vec(),
            operation: "deposit".into(),
            requesting_principal: vec![],
        },
        body: vec![0xAB; payload],
    }
    .encode(ByteOrder::native())
}

fn ftmp_regular(payload: usize) -> FtmpMessage {
    FtmpMessage {
        retransmission: false,
        source: ProcessorId(3),
        group: GroupId(1),
        seq: SeqNum(99),
        ts: Timestamp(12_345),
        ack_ts: Timestamp(12_000),
        body: FtmpBody::Regular {
            conn: ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2)),
            request_num: RequestNum(41),
            giop: Bytes::from(giop_request(payload)),
        },
    }
}

fn bench_cdr(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdr");
    g.bench_function("write_mixed_stream", |b| {
        b.iter(|| {
            let mut w = CdrWriter::new(ByteOrder::native());
            for i in 0..32u32 {
                w.write_u8(i as u8);
                w.write_u32(i);
                w.write_u64(u64::from(i) << 32);
                w.write_string("operation_name");
            }
            black_box(w.into_bytes())
        })
    });
    let bytes = {
        let mut w = CdrWriter::new(ByteOrder::native());
        for i in 0..32u32 {
            w.write_u8(i as u8);
            w.write_u32(i);
            w.write_u64(u64::from(i) << 32);
            w.write_string("operation_name");
        }
        w.into_bytes()
    };
    g.bench_function("read_mixed_stream", |b| {
        b.iter(|| {
            let mut r = CdrReader::new(&bytes, ByteOrder::native());
            for _ in 0..32 {
                black_box(r.read_u8().unwrap());
                black_box(r.read_u32().unwrap());
                black_box(r.read_u64().unwrap());
                black_box(r.read_string().unwrap());
            }
        })
    });
    g.finish();
}

fn bench_giop(c: &mut Criterion) {
    let mut g = c.benchmark_group("giop");
    for payload in [0usize, 256, 4096] {
        g.throughput(Throughput::Bytes(payload as u64));
        g.bench_with_input(
            BenchmarkId::new("encode_request", payload),
            &payload,
            |b, &p| b.iter(|| black_box(giop_request(p))),
        );
        let encoded = giop_request(payload);
        g.bench_with_input(
            BenchmarkId::new("decode_request", payload),
            &encoded,
            |b, e| b.iter(|| black_box(GiopMessage::decode(e).unwrap())),
        );
    }
    g.finish();
}

fn bench_ftmp_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftmp_wire");
    for payload in [0usize, 256, 4096] {
        let msg = ftmp_regular(payload);
        g.throughput(Throughput::Bytes(payload as u64));
        g.bench_with_input(BenchmarkId::new("encode_regular", payload), &msg, |b, m| {
            b.iter(|| black_box(m.encode(ByteOrder::native())))
        });
        let bytes = msg.encode(ByteOrder::native());
        g.bench_with_input(
            BenchmarkId::new("decode_regular", payload),
            &bytes,
            |b, e| b.iter(|| black_box(FtmpMessage::decode(e).unwrap())),
        );
    }
    let hb = FtmpMessage {
        body: FtmpBody::Heartbeat,
        ..ftmp_regular(0)
    };
    g.bench_function("encode_heartbeat", |b| {
        b.iter(|| black_box(hb.encode(ByteOrder::native())))
    });
    let bytes = ftmp_regular(256).encode(ByteOrder::native());
    g.bench_function("classify", |b| b.iter(|| black_box(classify(&bytes))));
    g.finish();
}

fn bench_packed_container(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed_container");
    let trailer = wire::encode_ack_vector(&AckVector {
        group: GroupId(1),
        entries: (1..=5)
            .map(|i| (ProcessorId(i), Timestamp(1_000)))
            .collect(),
    });
    for count in [2usize, 8, 24] {
        let msgs: Vec<Bytes> = (0..count)
            .map(|i| {
                FtmpMessage {
                    seq: SeqNum(i as u64),
                    ..ftmp_regular(32)
                }
                .encode(ByteOrder::native())
            })
            .collect();
        let total: u64 = msgs.iter().map(|m| m.len() as u64).sum();
        g.throughput(Throughput::Bytes(total));
        g.bench_with_input(BenchmarkId::new("encode", count), &msgs, |b, m| {
            b.iter(|| black_box(wire::encode_packed(m, Some(&trailer))))
        });
        let container = wire::encode_packed(&msgs, Some(&trailer));
        g.bench_with_input(BenchmarkId::new("unpack", count), &container, |b, d| {
            b.iter(|| black_box(wire::unpack(d).unwrap()))
        });
        // Unpack + zero-copy decode of every inner message: the complete
        // receive-side codec cost of a packed datagram.
        g.bench_with_input(
            BenchmarkId::new("unpack_decode_all", count),
            &container,
            |b, d| {
                b.iter(|| {
                    let (slices, v) = wire::unpack(d).unwrap();
                    for s in &slices {
                        black_box(FtmpMessage::decode_shared(s).unwrap());
                    }
                    black_box(v)
                })
            },
        );
    }
    // Buffer-reusing encode vs the allocating one.
    let msg = ftmp_regular(256);
    g.bench_function("encode_into_reused_buf", |b| {
        let mut buf = BytesMut::with_capacity(1024);
        b.iter(|| {
            buf.clear();
            msg.encode_into(ByteOrder::native(), &mut buf);
            black_box(buf.len())
        })
    });
    g.bench_function("decode_shared_regular", |b| {
        let bytes = msg.encode(ByteOrder::native());
        b.iter(|| black_box(FtmpMessage::decode_shared(&bytes).unwrap()))
    });
    g.finish();
}

/// End-to-end: a three-member group pushing bursty traffic through the
/// simulator, packing off vs on (Deadline 500 µs). Criterion measures the
/// wall-clock CPU cost of the same delivered workload; the datagram
/// reduction itself is reported by experiment E12 and `BENCH_pack.json`.
fn bench_packed_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("packed_end_to_end");
    g.sample_size(12);
    let run = |packing: Option<Packing>| -> usize {
        let mut proto = ProtocolConfig::with_seed(21);
        if let Some(p) = packing {
            proto = proto.packing(p);
        }
        let mut w = FtmpWorld::new(3, SimConfig::with_seed(21), proto, ClockMode::Lamport);
        for round in 0..20 {
            let from = round % 3 + 1;
            for _ in 0..4 {
                w.send(from, 64);
            }
            w.run_us(2_000);
        }
        w.run_ms(50);
        let res = w.collect();
        assert!(res.all_agree());
        res.delivered()
    };
    g.bench_function("unpacked", |b| b.iter(|| black_box(run(None))));
    g.bench_function("packed_deadline_500us", |b| {
        b.iter(|| {
            black_box(run(Some(Packing::with(
                1400,
                PackPolicy::Deadline(SimDuration::from_micros(500)),
            ))))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cdr,
    bench_giop,
    bench_ftmp_wire,
    bench_packed_container,
    bench_packed_end_to_end
);
criterion_main!(benches);
