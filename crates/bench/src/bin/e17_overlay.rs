//! E17 — dissemination-overlay control-plane cost (DESIGN.md §13).
//!
//! Writes `results/e17.json`: control-datagram receptions and NACK-repair
//! latency for the flat full-mesh control plane versus the k-ary
//! dissemination tree, at 16/64/128/256 members under a light rotating
//! workload with 2% iid loss. Flat mode has every member receive every
//! other member's heartbeat — O(n²) control receptions per interval — while
//! tree mode confines steady-state digests to O(k) tree neighborhoods, so
//! the headline figure is the flat/tree reception ratio at each size.
//!
//! At 64 and 128 members the full conformance checker rides along (both
//! modes) with a voluntary mid-run membership change, so the numbers come
//! from runs the seven oracles certify, including a tree rebuild.

use ftmp_core::{ClockMode, OverlayPolicy, PackPolicy, Packing, ProcessorId, ProtocolConfig};
use ftmp_harness::worlds::FtmpWorld;
use ftmp_net::{LossModel, SimConfig, SimDuration};
use ftmp_telemetry::Registry;
use std::fmt::Write as _;
use std::time::Instant;

const SIZES: [u32; 4] = [16, 64, 128, 256];
const ROUNDS: u32 = 40;

fn deadline_packing() -> Packing {
    Packing::with(1400, PackPolicy::Deadline(SimDuration::from_micros(500)))
}

struct Cell {
    members: u32,
    mode: &'static str,
    checked: bool,
    violations: u64,
    deliveries: u64,
    datagrams_sent: u64,
    control_received: u64,
    repair_p50_us: u64,
    repair_p99_us: u64,
    wall_ms: f64,
    counterexample: Option<String>,
}

/// One run: `ROUNDS` rotating multicasts at 10 ms spacing, a voluntary
/// removal of the highest member halfway through when `check` is set, and
/// a settle window. Control receptions sum `ProcessorStats::control_received`
/// over members; repair latency is the merged `rmp_recovery_us` histogram.
fn run_cell(n: u32, tree: bool, check: bool) -> Cell {
    let mut proto = ProtocolConfig::with_seed(0xE17).packing(deadline_packing());
    if tree {
        proto = proto.overlay(OverlayPolicy::Tree { arity: 4 });
    }
    let sim = SimConfig::with_seed(0xE17 + u64::from(n)).loss(LossModel::Iid { p: 0.02 });
    let mut w = FtmpWorld::new(n, sim, proto, ClockMode::Lamport);
    w.enable_telemetry();
    let checker = check.then(|| w.attach_checker());
    let wall = Instant::now();
    for round in 0..ROUNDS {
        // Rotate over the members that survive the mid-run removal.
        let from = round % (n - 1) + 1;
        w.send(from, 64);
        if round == ROUNDS / 2 {
            if let Some(c) = &checker {
                let group = w.group();
                let victim = ProcessorId(n);
                w.net.with_node(1, move |node, now, out| {
                    node.engine_mut().remove_processor(now, group, victim);
                    node.pump_at(now, out);
                });
                c.retire(n);
            }
        }
        w.run_ms(10);
    }
    w.run_ms(400);
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;

    let res = w.collect();
    let deliveries: u64 = res.sequences.iter().map(|s| s.len() as u64).sum();
    let (violations, counterexample) = match &checker {
        Some(c) => {
            c.finish(1..n); // member n departed mid-run
            (
                c.violation_count(),
                c.with_suite(|s| s.first_counterexample()),
            )
        }
        None => (0, None),
    };
    let mut control_received = 0u64;
    let mut merged = Registry::new();
    for (_, node) in w.net.nodes() {
        control_received += node.engine().stats().control_received();
        if let Some(t) = node.engine().telemetry() {
            merged.merge(t.registry());
        }
    }
    let repair = merged
        .snapshot()
        .histogram("rmp_recovery_us")
        .cloned()
        .unwrap_or_default();
    Cell {
        members: n,
        mode: if tree { "tree" } else { "flat" },
        checked: check,
        violations,
        deliveries,
        datagrams_sent: w.net.stats().sent_packets,
        control_received,
        repair_p50_us: repair.p50,
        repair_p99_us: repair.p99,
        wall_ms,
        counterexample,
    }
}

fn main() {
    let mut cells: Vec<Cell> = Vec::new();
    for &n in &SIZES {
        let check = n == 64 || n == 128;
        for tree in [false, true] {
            let c = run_cell(n, tree, check);
            eprintln!(
                "e17: n={} mode={} control_received={} deliveries={} violations={} ({:.0} ms)",
                c.members, c.mode, c.control_received, c.deliveries, c.violations, c.wall_ms
            );
            if c.violations > 0 {
                eprintln!("{}", c.counterexample.as_deref().unwrap_or("no cx"));
            }
            assert_eq!(c.violations, 0, "oracles must stay clean at n={n}");
            cells.push(c);
        }
    }

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"e17_overlay\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"members\": {}, \"mode\": \"{}\", \"checked\": {}, \"violations\": {}, \
             \"deliveries\": {}, \"datagrams_sent\": {}, \"control_received\": {}, \
             \"repair_p50_us\": {}, \"repair_p99_us\": {}, \"wall_ms\": {:.1}}}{}",
            c.members,
            c.mode,
            c.checked,
            c.violations,
            c.deliveries,
            c.datagrams_sent,
            c.control_received,
            c.repair_p50_us,
            c.repair_p99_us,
            c.wall_ms,
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n  \"control_reduction\": [\n");
    for (k, &n) in SIZES.iter().enumerate() {
        let flat = cells
            .iter()
            .find(|c| c.members == n && c.mode == "flat")
            .expect("flat cell");
        let tree = cells
            .iter()
            .find(|c| c.members == n && c.mode == "tree")
            .expect("tree cell");
        let ratio = flat.control_received as f64 / tree.control_received.max(1) as f64;
        let _ = writeln!(
            j,
            "    {{\"members\": {}, \"flat_over_tree\": {:.2}}}{}",
            n,
            ratio,
            if k + 1 < SIZES.len() { "," } else { "" }
        );
        if n == 128 {
            assert!(
                ratio >= 4.0,
                "tree must cut control receptions >=4x at 128 members, got {ratio:.2}"
            );
        }
    }
    j.push_str("  ]\n}\n");

    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/e17.json", &j).expect("write results/e17.json");
    print!("{j}");
}
