//! Writes `BENCH_pack.json`: a small machine-readable snapshot of the
//! packing layer's codec cost and end-to-end wire effect, recorded by
//! `just bench` alongside the criterion runs (which keep the full
//! statistical treatment — this file is the trend line CI archives).

use bytes::Bytes;
use ftmp_core::wire::{self, AckVector, FtmpBody, FtmpMessage};
use ftmp_core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, PackPolicy, Packing, ProcessorId,
    ProtocolConfig, RequestNum, SeqNum, Timestamp,
};
use ftmp_harness::worlds::FtmpWorld;
use ftmp_net::{SimConfig, SimDuration};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn regular(seq: u64, payload: usize) -> FtmpMessage {
    FtmpMessage {
        retransmission: false,
        source: ProcessorId(3),
        group: GroupId(1),
        seq: SeqNum(seq),
        ts: Timestamp(seq * 7 + 1),
        ack_ts: Timestamp(seq),
        body: FtmpBody::Regular {
            conn: ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2)),
            request_num: RequestNum(seq),
            giop: Bytes::from(vec![0xAB; payload]),
        },
    }
}

/// Median-of-5 wall-clock nanoseconds per op over `iters` iterations.
fn time_ns(iters: u32, mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u64> = (0..5)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            (t.elapsed().as_nanos() / u128::from(iters)) as u64
        })
        .collect();
    samples.sort_unstable();
    samples[2]
}

struct E2e {
    packets: u64,
    messages: u64,
    delivered: usize,
    heartbeats: u64,
    suppressed: u64,
}

fn end_to_end(packing: Option<Packing>, sparse: bool) -> E2e {
    let mut proto = ProtocolConfig::with_seed(33);
    if let Some(p) = packing {
        proto = proto.packing(p);
    }
    let mut w = FtmpWorld::new(3, SimConfig::with_seed(33), proto, ClockMode::Lamport);
    if sparse {
        // Sparse traffic (one message per 60 ms against a 10 ms heartbeat
        // interval): the piggyback deferral path replaces most standalone
        // heartbeats with acks riding data (E12's 73% suppression claim).
        for round in 0..16u32 {
            w.send(round % 3 + 1, 64);
            w.run_ms(60);
        }
    } else {
        for round in 0..30u32 {
            let from = round % 3 + 1;
            for _ in 0..4 {
                w.send(from, 64);
            }
            w.run_us(2_000);
        }
    }
    w.run_ms(100);
    let res = w.collect();
    assert!(res.all_agree(), "ordering must hold in both modes");
    let mut heartbeats = 0;
    let mut suppressed = 0;
    for (_, node) in w.net.nodes() {
        let s = node.engine().stats();
        heartbeats += s
            .sent
            .get(&ftmp_core::FtmpMsgType::Heartbeat)
            .copied()
            .unwrap_or(0);
        suppressed += s.heartbeats_suppressed;
    }
    E2e {
        packets: w.net.stats().sent_packets,
        messages: w.net.stats().sent_messages,
        delivered: res.delivered(),
        heartbeats,
        suppressed,
    }
}

fn main() {
    // --- codec micro-timings -------------------------------------------------
    let msgs: Vec<Bytes> = (0..8u64)
        .map(|i| regular(i, 32).encode(ftmp_cdr::ByteOrder::native()))
        .collect();
    let trailer = wire::encode_ack_vector(&AckVector {
        group: GroupId(1),
        entries: (1..=5)
            .map(|i| (ProcessorId(i), Timestamp(1_000)))
            .collect(),
    });
    let encode_ns = time_ns(20_000, || {
        black_box(wire::encode_packed(&msgs, Some(&trailer)));
    });
    let container = wire::encode_packed(&msgs, Some(&trailer));
    let unpack_ns = time_ns(20_000, || {
        black_box(wire::unpack(&container).unwrap());
    });
    let decode_all_ns = time_ns(20_000, || {
        let (slices, _) = wire::unpack(&container).unwrap();
        for s in &slices {
            black_box(FtmpMessage::decode_shared(s).unwrap());
        }
    });

    // --- end-to-end wire effect ---------------------------------------------
    let deadline = || Packing::with(1400, PackPolicy::Deadline(SimDuration::from_micros(500)));
    let plain = end_to_end(None, false);
    let packed = end_to_end(Some(deadline()), false);
    // Dense traffic keeps the ack vector perpetually fresh, so heartbeat
    // suppression only shows on a sparse workload — measured separately.
    let sparse = end_to_end(Some(deadline()), true);
    let sparse_plain = end_to_end(None, true);
    let ratio = |a: u64, b: u64| -> f64 {
        if b == 0 {
            0.0
        } else {
            a as f64 / b as f64
        }
    };

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"bench\": \"pack\",");
    let _ = writeln!(j, "  \"container_msgs\": {},", msgs.len());
    let _ = writeln!(j, "  \"encode_packed_ns\": {encode_ns},");
    let _ = writeln!(j, "  \"unpack_ns\": {unpack_ns},");
    let _ = writeln!(j, "  \"unpack_decode_all_ns\": {decode_all_ns},");
    let _ = writeln!(j, "  \"e2e\": {{");
    let _ = writeln!(
        j,
        "    \"unpacked\": {{\"datagrams\": {}, \"messages\": {}, \"delivered\": {}, \"heartbeats\": {}}},",
        plain.packets, plain.messages, plain.delivered, plain.heartbeats
    );
    let _ = writeln!(
        j,
        "    \"packed\": {{\"datagrams\": {}, \"messages\": {}, \"delivered\": {}, \"heartbeats\": {}}},",
        packed.packets, packed.messages, packed.delivered, packed.heartbeats
    );
    let _ = writeln!(
        j,
        "    \"datagram_reduction\": {:.3},",
        ratio(plain.packets, packed.packets)
    );
    let _ = writeln!(
        j,
        "    \"messages_per_datagram_packed\": {:.3}",
        ratio(packed.messages, packed.packets)
    );
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"e2e_sparse\": {{");
    let _ = writeln!(
        j,
        "    \"unpacked\": {{\"datagrams\": {}, \"heartbeats\": {}}},",
        sparse_plain.packets, sparse_plain.heartbeats
    );
    let _ = writeln!(
        j,
        "    \"packed\": {{\"datagrams\": {}, \"delivered\": {}, \"heartbeats\": {}, \"heartbeats_suppressed\": {}}},",
        sparse.packets, sparse.delivered, sparse.heartbeats, sparse.suppressed
    );
    let _ = writeln!(
        j,
        "    \"heartbeat_suppression_ratio\": {:.3}",
        ratio(sparse.suppressed, sparse.suppressed + sparse.heartbeats)
    );
    j.push_str("  }\n}\n");

    std::fs::write("BENCH_pack.json", &j).expect("write BENCH_pack.json");
    print!("{j}");
}
