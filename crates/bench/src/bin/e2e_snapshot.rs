//! Writes `BENCH_e2e.json`: the engine-saturation snapshot — sustained
//! multicast throughput and p99 end-to-end latency at 3/5/7 replicas, a
//! 10k-connection soak over the sharded per-connection engine, and a
//! direct duplicate-detector eviction soak. Wall-clock figures measure
//! engine cost (the simulator advances virtual time with zero sleep), so
//! msgs/sec here is "how fast the protocol stack turns the crank", the
//! companion to `BENCH_pack.json`'s wire-effect numbers.

use ftmp_core::RequestNum;
use ftmp_core::{ClockMode, ConnectionId, ObjectGroupId, PackPolicy, Packing, ProtocolConfig};
use ftmp_harness::worlds::FtmpWorld;
use ftmp_net::{SimConfig, SimDuration};
use ftmp_orb::ShardSet;
use std::fmt::Write as _;
use std::time::Instant;

fn deadline_packing() -> Packing {
    Packing::with(1400, PackPolicy::Deadline(SimDuration::from_micros(500)))
}

struct Saturation {
    replicas: u32,
    msgs_sent: u64,
    deliveries: u64,
    datagrams_sent: u64,
    datagrams_per_delivery: f64,
    wall_ms: f64,
    msgs_per_sec: f64,
    deliveries_per_sec: f64,
    p99_e2e_us: u64,
    all_agree: bool,
}

/// Sustained load at `n` replicas: every member multicasts in turn, the
/// pump runs every simulated millisecond, and telemetry histograms record
/// send → own-ordered-delivery latency.
fn saturation(n: u32) -> Saturation {
    const ROUNDS: u32 = 200;
    const BURST: u32 = 5;
    let proto = ProtocolConfig::with_seed(77).packing(deadline_packing());
    let mut w = FtmpWorld::new(n, SimConfig::with_seed(77), proto, ClockMode::Lamport);
    w.enable_telemetry();
    let wall = Instant::now();
    for round in 0..ROUNDS {
        let from = round % n + 1;
        for _ in 0..BURST {
            w.send(from, 64);
        }
        w.run_us(1_000);
    }
    w.run_ms(200);
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    let res = w.collect();
    let deliveries: u64 = res.sequences.iter().map(|s| s.len() as u64).sum();
    // p99 across members: the slowest replica's self-delivery tail is the
    // figure an application sees under active replication.
    let mut p99 = 0;
    for (_, node) in w.net.nodes() {
        if let Some(tel) = node.engine().telemetry() {
            if let Some(h) = tel.snapshot().histogram("e2e_self_us") {
                if h.count > 0 {
                    p99 = p99.max(h.p99);
                }
            }
        }
    }
    let msgs_sent = u64::from(ROUNDS * BURST);
    let secs = wall_ms / 1_000.0;
    // Wire cost of the run: every datagram any node handed to the network
    // (data, packed containers, heartbeats, repair), normalized per ordered
    // delivery so replica counts compare on overhead, not raw volume.
    let datagrams_sent = w.net.stats().sent_packets;
    Saturation {
        replicas: n,
        msgs_sent,
        deliveries,
        datagrams_sent,
        datagrams_per_delivery: if deliveries > 0 {
            datagrams_sent as f64 / deliveries as f64
        } else {
            0.0
        },
        wall_ms,
        msgs_per_sec: msgs_sent as f64 / secs,
        deliveries_per_sec: deliveries as f64 / secs,
        p99_e2e_us: p99,
        all_agree: res.all_agree(),
    }
}

struct ConnSoak {
    connections: u32,
    msgs_sent: u64,
    deliveries: u64,
    wall_ms: f64,
    msgs_per_sec: f64,
    all_agree: bool,
}

/// 10k logical connections multiplexed over one 3-member processor group
/// (§7's connection model); traffic round-robins across connections so the
/// per-connection state in the sharded engine all stays warm.
fn conn_soak() -> ConnSoak {
    const CONNS: u32 = 10_000;
    const SENDS: u64 = 2_000;
    let proto = ProtocolConfig::with_seed(99).packing(deadline_packing());
    let mut w = FtmpWorld::new(3, SimConfig::with_seed(99), proto, ClockMode::Lamport);
    let conns: Vec<ConnectionId> = (0..CONNS)
        .map(|i| ConnectionId::new(ObjectGroupId::new(3, i), ObjectGroupId::new(4, i)))
        .collect();
    for &c in &conns {
        w.bind_conn(c);
    }
    let wall = Instant::now();
    for i in 0..SENDS {
        let conn = conns[(i as usize * 7919) % conns.len()];
        let from = (i % 3) as u32 + 1;
        w.send_on(conn, from, 64);
        if i % 8 == 7 {
            w.run_us(1_000);
        }
    }
    w.run_ms(300);
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    let res = w.collect();
    let deliveries: u64 = res.sequences.iter().map(|s| s.len() as u64).sum();
    ConnSoak {
        connections: CONNS,
        msgs_sent: SENDS,
        deliveries,
        wall_ms,
        msgs_per_sec: SENDS as f64 / (wall_ms / 1_000.0),
        all_agree: res.all_agree(),
    }
}

struct DupSoak {
    connections: u32,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
    suppressed: u64,
    evictions: u64,
}

/// Direct soak of the sharded duplicate detectors: sparse request numbers
/// (every number a residue) push past the per-connection memory bound so
/// the watermark compaction runs, and each number is offered twice so both
/// the suppression and eviction counters move.
fn dup_soak() -> DupSoak {
    const CONNS: u32 = 64;
    const NUMS_PER_CONN: u64 = 5_000;
    let mut shards = ShardSet::new();
    let conns: Vec<ConnectionId> = (0..CONNS)
        .map(|i| ConnectionId::new(ObjectGroupId::new(5, i), ObjectGroupId::new(6, i)))
        .collect();
    let mut ops = 0u64;
    let wall = Instant::now();
    for k in 0..NUMS_PER_CONN {
        let num = RequestNum(2 * k + 1); // odd: never contiguous, all residue
        for &c in &conns {
            assert!(shards.first_execution(c, num), "fresh number admitted");
            assert!(!shards.first_execution(c, num), "duplicate suppressed");
            ops += 2;
        }
    }
    // Numbers long since folded into the watermark must still suppress.
    for &c in &conns {
        assert!(!shards.first_execution(c, RequestNum(3)), "evicted dup");
        ops += 1;
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    let (suppressed, _) = shards.suppression_counts();
    DupSoak {
        connections: CONNS,
        ops,
        wall_ms,
        ops_per_sec: ops as f64 / (wall_ms / 1_000.0),
        suppressed,
        evictions: shards.dup_evictions(),
    }
}

fn main() {
    let sats: Vec<Saturation> = [3, 5, 7].into_iter().map(saturation).collect();
    let soak = conn_soak();
    let dup = dup_soak();
    assert!(soak.all_agree, "soak ordering violated");
    assert!(dup.evictions > 0, "eviction path never exercised");

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"e2e\",\n  \"saturation\": [\n");
    for (i, s) in sats.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"replicas\": {}, \"msgs_sent\": {}, \"deliveries\": {}, \
             \"datagrams_sent\": {}, \"datagrams_per_delivery\": {:.3}, \"wall_ms\": {:.1}, \
             \"sustained_msgs_per_sec\": {:.0}, \"deliveries_per_sec\": {:.0}, \
             \"p99_e2e_us\": {}, \"all_agree\": {}}}{}",
            s.replicas,
            s.msgs_sent,
            s.deliveries,
            s.datagrams_sent,
            s.datagrams_per_delivery,
            s.wall_ms,
            s.msgs_per_sec,
            s.deliveries_per_sec,
            s.p99_e2e_us,
            s.all_agree,
            if i + 1 < sats.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"conn_soak\": {{\"connections\": {}, \"msgs_sent\": {}, \"deliveries\": {}, \
         \"wall_ms\": {:.1}, \"msgs_per_sec\": {:.0}, \"all_agree\": {}}},",
        soak.connections,
        soak.msgs_sent,
        soak.deliveries,
        soak.wall_ms,
        soak.msgs_per_sec,
        soak.all_agree
    );
    let _ = writeln!(
        j,
        "  \"shard_dup_soak\": {{\"connections\": {}, \"ops\": {}, \"wall_ms\": {:.1}, \
         \"ops_per_sec\": {:.0}, \"suppressed\": {}, \"evictions\": {}}}",
        dup.connections, dup.ops, dup.wall_ms, dup.ops_per_sec, dup.suppressed, dup.evictions
    );
    j.push_str("}\n");

    std::fs::write("BENCH_e2e.json", &j).expect("write BENCH_e2e.json");
    print!("{j}");
}
