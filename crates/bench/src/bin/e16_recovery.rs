//! Writes `results/e16.json`: the E16 crash-recovery snapshot — wall-clock
//! cost of the DESIGN.md §12 restart path (segment scan + CRC validation,
//! watermark/horizon derivation, duplicate-detector warm start) as a
//! function of durable-log size. The write cost is reported alongside so
//! the append path's overhead is visible in the same table.
//!
//! With `FTMP_METRICS_DIR` set, the warm-started shard set's telemetry
//! counters (requests/replies suppressed, watermark evictions) and the
//! recovery stats are also written to `$FTMP_METRICS_DIR/e16_metrics.json`.

use bytes::Bytes;
use ftmp_core::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum, SeqNum, Timestamp};
use ftmp_orb::ShardSet;
use ftmp_store::{
    recover, scratch_dir, DeliveredRecord, DurableLog, LogConfig, LogRecord, RecoverStats,
    RecoveredState, ViewRecord,
};
use std::fmt::Write as _;
use std::time::Instant;

/// Connections the synthetic workload spreads over.
const CONNS: u32 = 8;

fn conn_of(i: u32) -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, i), ObjectGroupId::new(2, i))
}

struct Row {
    records: u64,
    segments: usize,
    log_bytes: u64,
    write_ms: f64,
    recover_ms: f64,
    derive_ms: f64,
    warm_ms: f64,
    restart_ms: f64,
    recovered_per_sec: f64,
}

/// Write a `n`-delivery log (views sprinkled in, like a real member's),
/// then measure the three restart stages: recover (scan + CRC), derive
/// (horizon + per-connection watermarks), warm start (replay the numbers
/// through the duplicate detector's own fold).
fn run_size(n: u64) -> (Row, ShardSet, RecoverStats) {
    let dir = scratch_dir("e16");
    let mut log = DurableLog::open(&dir, LogConfig::default()).expect("open log");
    let giop = Bytes::from(vec![0xAB; 64]);
    let wall = Instant::now();
    for k in 0..n {
        if k % 1024 == 0 {
            log.append(&LogRecord::ViewChange(ViewRecord {
                group: GroupId(1),
                members: (1..=4).map(ProcessorId).collect(),
                ts: Timestamp(k + 1),
            }))
            .expect("append view");
        }
        log.append(&LogRecord::Delivered(DeliveredRecord {
            group: GroupId(1),
            conn: conn_of((k % u64::from(CONNS)) as u32),
            request_num: RequestNum(k + 1),
            source: ProcessorId((k % 4 + 1) as u32),
            seq: SeqNum(k + 1),
            ts: Timestamp(k + 1),
            giop: giop.clone(),
        }))
        .expect("append delivery");
    }
    log.sync().expect("sync");
    let write_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    drop(log);
    let segs = ftmp_store::log::list_segments(&dir).expect("list segments");
    let log_bytes: u64 = segs
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();

    let t = Instant::now();
    let rec = recover(&dir).expect("recover");
    let recover_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let t = Instant::now();
    let state = RecoveredState::from_records(&rec.records);
    let derive_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let t = Instant::now();
    let mut shards = ShardSet::new();
    let mut warmed = 0;
    for (conn, nums) in &state.per_conn {
        warmed += shards.warm_start_executed(*conn, nums.iter().copied());
    }
    let warm_ms = t.elapsed().as_secs_f64() * 1_000.0;

    assert_eq!(state.delivered, n, "every delivery recovered");
    assert_eq!(
        warmed, n,
        "every recovered number was fresh to the detector"
    );
    assert_eq!(
        state.horizon_of(GroupId(1)),
        Timestamp(n),
        "horizon = last ts"
    );
    assert!(
        !shards.first_execution(conn_of(0), RequestNum(1)),
        "a pre-crash request must stay suppressed after warm start"
    );
    let stats = rec.stats.clone();
    std::fs::remove_dir_all(&dir).expect("cleanup");
    let restart_ms = recover_ms + derive_ms + warm_ms;
    (
        Row {
            records: n,
            segments: segs.len(),
            log_bytes,
            write_ms,
            recover_ms,
            derive_ms,
            warm_ms,
            restart_ms,
            recovered_per_sec: n as f64 / (restart_ms / 1_000.0),
        },
        shards,
        stats,
    )
}

fn dump_metrics(dir: &str, shards: &ShardSet, stats: &RecoverStats) -> std::io::Result<()> {
    let mut reg = ftmp_telemetry::Registry::new();
    shards.register_metrics(&mut reg);
    let id = reg.counter("e16_segments_scanned");
    reg.inc(id, u64::from(stats.segments_scanned));
    let id = reg.counter("e16_records_recovered");
    reg.inc(id, stats.records_recovered);
    let id = reg.counter("e16_bytes_truncated");
    reg.inc(id, stats.bytes_truncated);
    let id = reg.counter("e16_records_quarantined");
    reg.inc(id, stats.records_quarantined);
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        std::path::Path::new(dir).join("e16_metrics.json"),
        reg.snapshot().to_json() + "\n",
    )
}

fn main() {
    let sizes = [1_000u64, 10_000, 50_000];
    let runs: Vec<(Row, ShardSet, RecoverStats)> = sizes.into_iter().map(run_size).collect();

    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"e16-recovery\",\n  \"rows\": [\n");
    for (i, (r, _, _)) in runs.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"records\": {}, \"segments\": {}, \"log_bytes\": {}, \
             \"write_ms\": {:.2}, \"recover_ms\": {:.2}, \"derive_ms\": {:.2}, \
             \"warm_start_ms\": {:.2}, \"restart_ms\": {:.2}, \
             \"recovered_per_sec\": {:.0}}}{}",
            r.records,
            r.segments,
            r.log_bytes,
            r.write_ms,
            r.recover_ms,
            r.derive_ms,
            r.warm_ms,
            r.restart_ms,
            r.recovered_per_sec,
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/e16.json", &j).expect("write results/e16.json");
    println!("{j}");

    if let Ok(dir) = std::env::var("FTMP_METRICS_DIR") {
        let (_, shards, stats) = runs.last().expect("at least one size");
        dump_metrics(&dir, shards, stats).expect("write e16_metrics.json");
    }
}
