//! Alignment-aware CDR decoder.

use crate::{ByteOrder, CdrError};

/// An alignment-aware CDR decoder over a borrowed byte slice.
///
/// Mirrors [`crate::CdrWriter`]: every primitive read first skips padding to
/// its natural alignment, measured from the start of the stream (plus an
/// optional `base` offset for readers that continue an outer stream).
#[derive(Debug, Clone)]
pub struct CdrReader<'a> {
    buf: &'a [u8],
    pos: usize,
    order: ByteOrder,
    base: usize,
}

impl<'a> CdrReader<'a> {
    /// Create a reader at stream offset 0.
    pub fn new(buf: &'a [u8], order: ByteOrder) -> Self {
        Self::with_base(buf, order, 0)
    }

    /// Create a reader whose first byte sits at stream offset `base`.
    pub fn with_base(buf: &'a [u8], order: ByteOrder, base: usize) -> Self {
        CdrReader {
            buf,
            pos: 0,
            order,
            base,
        }
    }

    /// Byte order this reader interprets.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Switch byte order mid-stream (a GIOP header carries the flag that
    /// governs the rest of the message).
    pub fn set_order(&mut self, order: ByteOrder) {
        self.order = order;
    }

    /// Logical stream offset of the next byte.
    pub fn position(&self) -> usize {
        self.base + self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Error unless the reader consumed the whole buffer.
    pub fn expect_exhausted(&self) -> Result<(), CdrError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(CdrError::TrailingBytes(self.remaining()))
        }
    }

    /// Skip padding up to the given alignment.
    pub fn align(&mut self, align: usize) -> Result<(), CdrError> {
        debug_assert!(align.is_power_of_two() && align <= 8);
        let pos = self.position();
        let pad = (align - (pos % align)) % align;
        if pad > self.remaining() {
            return Err(CdrError::UnexpectedEof {
                at: self.position(),
                wanted: pad,
                available: self.remaining(),
            });
        }
        self.pos += pad;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CdrError> {
        if n > self.remaining() {
            return Err(CdrError::UnexpectedEof {
                at: self.position(),
                wanted: n,
                available: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read `n` raw bytes with no alignment.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], CdrError> {
        self.take(n)
    }

    /// CORBA `octet`.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        Ok(self.take(1)?[0])
    }

    /// CORBA `char`.
    pub fn read_i8(&mut self) -> Result<i8, CdrError> {
        Ok(self.take(1)?[0] as i8)
    }

    /// CORBA `boolean`: strict, only 0 and 1 are accepted.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CdrError::InvalidBool(b)),
        }
    }

    /// CORBA `unsigned short`.
    pub fn read_u16(&mut self) -> Result<u16, CdrError> {
        self.align(2)?;
        let b = self.take(2)?;
        Ok(match self.order {
            ByteOrder::Big => u16::from_be_bytes([b[0], b[1]]),
            ByteOrder::Little => u16::from_le_bytes([b[0], b[1]]),
        })
    }

    /// CORBA `short`.
    pub fn read_i16(&mut self) -> Result<i16, CdrError> {
        Ok(self.read_u16()? as i16)
    }

    /// CORBA `unsigned long`.
    pub fn read_u32(&mut self) -> Result<u32, CdrError> {
        self.align(4)?;
        let b = self.take(4)?;
        Ok(match self.order {
            ByteOrder::Big => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            ByteOrder::Little => u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
        })
    }

    /// CORBA `long`.
    pub fn read_i32(&mut self) -> Result<i32, CdrError> {
        Ok(self.read_u32()? as i32)
    }

    /// CORBA `unsigned long long`.
    pub fn read_u64(&mut self) -> Result<u64, CdrError> {
        self.align(8)?;
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(match self.order {
            ByteOrder::Big => u64::from_be_bytes(a),
            ByteOrder::Little => u64::from_le_bytes(a),
        })
    }

    /// CORBA `long long`.
    pub fn read_i64(&mut self) -> Result<i64, CdrError> {
        Ok(self.read_u64()? as i64)
    }

    /// CORBA `float`.
    pub fn read_f32(&mut self) -> Result<f32, CdrError> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// CORBA `double`.
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// CORBA `string` (length includes the terminating NUL).
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        let len = self.read_u32()? as usize;
        if len == 0 {
            // CORBA strings are never zero-length on the wire (the NUL is
            // always counted) but some ORBs emit 0 for empty; accept it.
            return Ok(String::new());
        }
        if len > self.remaining() {
            return Err(CdrError::LengthOverrun {
                len: len as u64,
                available: self.remaining(),
            });
        }
        let bytes = self.take(len)?;
        let (body, nul) = bytes.split_at(len - 1);
        if nul != [0] || body.contains(&0) {
            return Err(CdrError::BadString);
        }
        String::from_utf8(body.to_vec()).map_err(|_| CdrError::InvalidUtf8)
    }

    /// CORBA `sequence<octet>`.
    pub fn read_octet_seq(&mut self) -> Result<Vec<u8>, CdrError> {
        let len = self.read_u32()? as usize;
        if len > self.remaining() {
            return Err(CdrError::LengthOverrun {
                len: len as u64,
                available: self.remaining(),
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Read a sequence length prefix, validating it against a per-element
    /// minimum size so corrupt prefixes cannot trigger huge allocations.
    pub fn read_seq_len(&mut self, min_elem_size: usize) -> Result<usize, CdrError> {
        let len = self.read_u32()? as usize;
        if len.saturating_mul(min_elem_size.max(1)) > self.remaining() {
            return Err(CdrError::LengthOverrun {
                len: len as u64,
                available: self.remaining(),
            });
        }
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdrWriter;

    fn round<F: FnOnce(&mut CdrWriter), G: FnOnce(&mut CdrReader<'_>)>(
        order: ByteOrder,
        enc: F,
        dec: G,
    ) {
        let mut w = CdrWriter::new(order);
        enc(&mut w);
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, order);
        dec(&mut r);
        assert!(r.is_exhausted());
    }

    #[test]
    fn primitive_round_trip_both_orders() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            round(
                order,
                |w| {
                    w.write_u8(0xAB);
                    w.write_u16(0x1234);
                    w.write_u32(0xDEADBEEF);
                    w.write_u64(0x0102030405060708);
                    w.write_i32(-42);
                    w.write_bool(true);
                    w.write_f64(3.25);
                },
                |r| {
                    assert_eq!(r.read_u8().unwrap(), 0xAB);
                    assert_eq!(r.read_u16().unwrap(), 0x1234);
                    assert_eq!(r.read_u32().unwrap(), 0xDEADBEEF);
                    assert_eq!(r.read_u64().unwrap(), 0x0102030405060708);
                    assert_eq!(r.read_i32().unwrap(), -42);
                    assert!(r.read_bool().unwrap());
                    assert_eq!(r.read_f64().unwrap(), 3.25);
                },
            );
        }
    }

    #[test]
    fn string_round_trip() {
        round(
            ByteOrder::Big,
            |w| w.write_string("object_key/α"),
            |r| assert_eq!(r.read_string().unwrap(), "object_key/α"),
        );
    }

    #[test]
    fn eof_detected_with_offsets() {
        let bytes = [0u8; 3];
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        let err = r.read_u32().unwrap_err();
        match err {
            CdrError::UnexpectedEof {
                wanted, available, ..
            } => {
                assert_eq!(wanted, 4);
                assert_eq!(available, 3);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn bad_bool_rejected() {
        let bytes = [2u8];
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        assert_eq!(r.read_bool().unwrap_err(), CdrError::InvalidBool(2));
    }

    #[test]
    fn corrupt_string_length_rejected_without_allocation() {
        // Length prefix claims 0xFFFFFFFF bytes.
        let bytes = [0xFF, 0xFF, 0xFF, 0xFF, b'x'];
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        assert!(matches!(
            r.read_string().unwrap_err(),
            CdrError::LengthOverrun { .. }
        ));
    }

    #[test]
    fn string_missing_nul_rejected() {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_u32(2);
        w.write_bytes(b"ab"); // no NUL
        let bytes = w.into_bytes();
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        assert_eq!(r.read_string().unwrap_err(), CdrError::BadString);
    }

    #[test]
    fn trailing_bytes_detected() {
        let bytes = [1u8, 2u8];
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        r.read_u8().unwrap();
        assert_eq!(
            r.expect_exhausted().unwrap_err(),
            CdrError::TrailingBytes(1)
        );
    }

    #[test]
    fn seq_len_guard_rejects_absurd_lengths() {
        let bytes = [0x00, 0xFF, 0xFF, 0xFF];
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        assert!(r.read_seq_len(4).is_err());
    }

    #[test]
    fn base_offset_alignment_matches_writer() {
        let mut w = CdrWriter::with_base(ByteOrder::Big, 3);
        w.write_u32(7);
        let bytes = w.into_bytes();
        let mut r = CdrReader::with_base(&bytes, ByteOrder::Big, 3);
        assert_eq!(r.read_u32().unwrap(), 7);
        assert!(r.is_exhausted());
    }
}
