//! CDR decoding errors.

use std::fmt;

/// An error produced while decoding a CDR stream.
///
/// Encoding is infallible (the writer grows its buffer); all failure modes
/// live on the read side, where the bytes come off the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// The stream ended before the requested number of bytes was available.
    UnexpectedEof {
        /// Stream offset at which the read was attempted.
        at: usize,
        /// Number of bytes requested.
        wanted: usize,
        /// Number of bytes remaining.
        available: usize,
    },
    /// A `boolean` octet held a value other than 0 or 1.
    InvalidBool(u8),
    /// A string was not NUL-terminated or contained an interior NUL.
    BadString,
    /// A string or wide string was not valid UTF-8.
    InvalidUtf8,
    /// A sequence or string length exceeded the bytes remaining in the
    /// stream (corrupt length prefix; refusing to allocate).
    LengthOverrun {
        /// The decoded length prefix.
        len: u64,
        /// Bytes remaining in the stream.
        available: usize,
    },
    /// An enum discriminant was out of range for the target type.
    InvalidEnum {
        /// Name of the enum type being decoded.
        type_name: &'static str,
        /// The offending discriminant.
        value: u32,
    },
    /// An encapsulation was empty (missing its byte-order octet).
    EmptyEncapsulation,
    /// Trailing bytes remained after a complete value was decoded, in a
    /// context where the value must consume the whole buffer.
    TrailingBytes(usize),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::UnexpectedEof {
                at,
                wanted,
                available,
            } => write!(
                f,
                "unexpected end of CDR stream at offset {at}: wanted {wanted} bytes, {available} available"
            ),
            CdrError::InvalidBool(b) => write!(f, "invalid boolean octet {b:#04x}"),
            CdrError::BadString => write!(f, "malformed CDR string (NUL termination)"),
            CdrError::InvalidUtf8 => write!(f, "CDR string is not valid UTF-8"),
            CdrError::LengthOverrun { len, available } => write!(
                f,
                "length prefix {len} exceeds {available} remaining bytes"
            ),
            CdrError::InvalidEnum { type_name, value } => {
                write!(f, "invalid {type_name} discriminant {value}")
            }
            CdrError::EmptyEncapsulation => write!(f, "empty CDR encapsulation"),
            CdrError::TrailingBytes(n) => write!(f, "{n} trailing bytes after CDR value"),
        }
    }
}

impl std::error::Error for CdrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CdrError::UnexpectedEof {
            at: 12,
            wanted: 4,
            available: 1,
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains('4') && s.contains('1'));
        assert!(CdrError::InvalidBool(7).to_string().contains("0x07"));
        assert!(CdrError::TrailingBytes(3).to_string().contains('3'));
    }
}
