//! CDR encapsulations.
//!
//! An encapsulation is a `sequence<octet>` whose content is itself a CDR
//! stream beginning at offset 0 with a leading byte-order octet (0 =
//! big-endian, 1 = little-endian). GIOP uses encapsulations for service
//! contexts, tagged profiles in IORs, and type codes. Because alignment
//! restarts inside the encapsulation, the sender and receiver can disagree
//! about the outer stream's offsets without corrupting the nested value.

use crate::{ByteOrder, CdrDecode, CdrEncode, CdrError, CdrReader, CdrWriter};

/// Encode `value` as a CDR encapsulation with the given byte order, returning
/// the raw encapsulation octets (byte-order octet + body, *without* an outer
/// length prefix — callers emit it as a `sequence<octet>`).
pub fn encode_encapsulation<T: CdrEncode>(value: &T, order: ByteOrder) -> Vec<u8> {
    let mut inner = CdrWriter::new(order);
    // The byte-order octet occupies offset 0 of the nested stream.
    inner.write_u8(u8::from(order.as_flag()));
    value.encode(&mut inner);
    inner.into_bytes()
}

/// Decode a value from raw encapsulation octets produced by
/// [`encode_encapsulation`] (or any conforming ORB).
pub fn decode_encapsulation<T: CdrDecode>(bytes: &[u8]) -> Result<T, CdrError> {
    if bytes.is_empty() {
        return Err(CdrError::EmptyEncapsulation);
    }
    let order = ByteOrder::from_flag(bytes[0] != 0);
    let mut r = CdrReader::new(bytes, order);
    let _flag = r.read_u8()?;
    let value = T::decode(&mut r)?;
    Ok(value)
}

/// Write an encapsulated value into an outer stream as `sequence<octet>`.
pub fn write_encapsulated<T: CdrEncode>(w: &mut CdrWriter, value: &T, order: ByteOrder) {
    let bytes = encode_encapsulation(value, order);
    w.write_octet_seq(&bytes);
}

/// Read an encapsulated value from an outer stream (`sequence<octet>`).
pub fn read_encapsulated<T: CdrDecode>(r: &mut CdrReader<'_>) -> Result<T, CdrError> {
    let bytes = r.read_octet_seq()?;
    decode_encapsulation(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encapsulation_round_trip() {
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let v = (0xDEADBEEFu32, "profile".to_string());
            let bytes = encode_encapsulation(&v, order);
            assert_eq!(bytes[0], u8::from(order.as_flag()));
            let back: (u32, String) = decode_encapsulation(&bytes).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn empty_encapsulation_rejected() {
        assert_eq!(
            decode_encapsulation::<u32>(&[]).unwrap_err(),
            CdrError::EmptyEncapsulation
        );
    }

    #[test]
    fn nested_alignment_restarts_at_zero() {
        // Embed an encapsulation at a deliberately misaligned outer offset;
        // the nested u64 must still decode.
        let mut outer = CdrWriter::new(ByteOrder::Big);
        outer.write_u8(0xFF); // misalign
        write_encapsulated(&mut outer, &0x0102030405060708u64, ByteOrder::Little);
        let bytes = outer.into_bytes();
        let mut r = CdrReader::new(&bytes, ByteOrder::Big);
        assert_eq!(r.read_u8().unwrap(), 0xFF);
        let v: u64 = read_encapsulated(&mut r).unwrap();
        assert_eq!(v, 0x0102030405060708);
    }

    #[test]
    fn cross_endian_decode() {
        // Encode little, decode without being told the order: the leading
        // octet carries it.
        let bytes = encode_encapsulation(&0xCAFEBABEu32, ByteOrder::Little);
        let v: u32 = decode_encapsulation(&bytes).unwrap();
        assert_eq!(v, 0xCAFEBABE);
    }

    proptest! {
        #[test]
        fn prop_encapsulation_round_trip(v: u64, s in "[^\u{0}]{0,32}", little: bool) {
            let order = ByteOrder::from_flag(little);
            let bytes = encode_encapsulation(&(v, s.clone()), order);
            let back: (u64, String) = decode_encapsulation(&bytes).unwrap();
            prop_assert_eq!(back, (v, s));
        }
    }
}
