//! Alignment-aware CDR encoder.

use crate::ByteOrder;

/// An alignment-aware CDR encoder.
///
/// CDR aligns every primitive to its natural size *relative to the start of
/// the stream* (not the start of the enclosing message or allocation), so the
/// writer tracks a logical stream offset. When a GIOP body follows a GIOP
/// header in the same stream the caller keeps using one writer; when a CDR
/// encapsulation is nested, a fresh writer (offset 0) is used — see
/// [`crate::encapsulation`].
#[derive(Debug, Clone)]
pub struct CdrWriter {
    buf: Vec<u8>,
    order: ByteOrder,
    /// Stream offset of `buf[0]`; non-zero when this writer continues an
    /// outer stream (used by GIOP fragmentation).
    base: usize,
}

impl CdrWriter {
    /// Create a writer starting at stream offset 0.
    pub fn new(order: ByteOrder) -> Self {
        Self::with_base(order, 0)
    }

    /// Create a writer whose first byte sits at stream offset `base`.
    ///
    /// Alignment is computed against `base + buf.len()`.
    pub fn with_base(order: ByteOrder, base: usize) -> Self {
        CdrWriter {
            buf: Vec::new(),
            order,
            base,
        }
    }

    /// Create a writer at stream offset 0 with `capacity` bytes
    /// pre-reserved, for callers that can bound the encoded size up front
    /// (no buffer growth during the encode).
    pub fn with_capacity(order: ByteOrder, capacity: usize) -> Self {
        CdrWriter {
            buf: Vec::with_capacity(capacity),
            order,
            base: 0,
        }
    }

    /// Byte order this writer emits.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Clear contents and switch byte order, keeping the allocation.
    ///
    /// For callers that hold one writer as an encode scratch across many
    /// messages: steady-state encodes then reuse the grown buffer instead
    /// of allocating per message.
    pub fn reset(&mut self, order: ByteOrder) {
        self.buf.clear();
        self.order = order;
        self.base = 0;
    }

    /// Current logical stream offset (where the next byte will land).
    pub fn position(&self) -> usize {
        self.base + self.buf.len()
    }

    /// Number of bytes written into this writer's own buffer.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the encoded bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Insert padding so the next primitive of size `align` is naturally
    /// aligned. CDR pads with zero octets; their value is formally
    /// unspecified but zero keeps streams canonical and comparable.
    pub fn align(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two() && align <= 8);
        let pos = self.position();
        let pad = (align - (pos % align)) % align;
        for _ in 0..pad {
            self.buf.push(0);
        }
    }

    /// Append raw bytes with no alignment (octet sequences).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// CORBA `octet`.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// CORBA `char` (we restrict to ISO 8859-1 / ASCII octets).
    pub fn write_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// CORBA `boolean`: one octet, 0 or 1.
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// CORBA `unsigned short`.
    pub fn write_u16(&mut self, v: u16) {
        self.align(2);
        match self.order {
            ByteOrder::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// CORBA `short`.
    pub fn write_i16(&mut self, v: i16) {
        self.write_u16(v as u16);
    }

    /// CORBA `unsigned long`.
    pub fn write_u32(&mut self, v: u32) {
        self.align(4);
        match self.order {
            ByteOrder::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// CORBA `long`.
    pub fn write_i32(&mut self, v: i32) {
        self.write_u32(v as u32);
    }

    /// CORBA `unsigned long long`.
    pub fn write_u64(&mut self, v: u64) {
        self.align(8);
        match self.order {
            ByteOrder::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
            ByteOrder::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
        }
    }

    /// CORBA `long long`.
    pub fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }

    /// CORBA `float`.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// CORBA `double`.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// CORBA `string`: `unsigned long` length *including* the terminating
    /// NUL, then the octets, then the NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// CORBA `sequence<octet>`: `unsigned long` count then raw octets.
    pub fn write_octet_seq(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Reserve space for a `u32` at the current (4-aligned) position and
    /// return its buffer index, to be patched later with [`patch_u32`].
    ///
    /// GIOP uses this for the `message_size` field, which is only known once
    /// the body has been written.
    ///
    /// [`patch_u32`]: CdrWriter::patch_u32
    pub fn reserve_u32(&mut self) -> usize {
        self.align(4);
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0; 4]);
        at
    }

    /// Overwrite 4 bytes at buffer index `at` (from [`reserve_u32`]) with `v`.
    ///
    /// [`reserve_u32`]: CdrWriter::reserve_u32
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        let bytes = match self.order {
            ByteOrder::Big => v.to_be_bytes(),
            ByteOrder::Little => v.to_le_bytes(),
        };
        self.buf[at..at + 4].copy_from_slice(&bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_relative_to_stream_start() {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_u8(1); // offset 0
        w.write_u32(0xAABBCCDD); // pads to offset 4
        assert_eq!(w.as_bytes(), &[1, 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD]);
    }

    #[test]
    fn alignment_respects_base_offset() {
        // A writer continuing at stream offset 2 only needs 2 pad bytes to
        // align a u32.
        let mut w = CdrWriter::with_base(ByteOrder::Big, 2);
        w.write_u32(1);
        assert_eq!(w.len(), 6); // 2 pad + 4 value
        assert_eq!(w.position(), 8);
    }

    #[test]
    fn little_endian_layout() {
        let mut w = CdrWriter::new(ByteOrder::Little);
        w.write_u16(0x0102);
        w.write_u64(0x0102030405060708);
        // u16 at 0..2, pad 2..8, u64 at 8..16
        assert_eq!(w.len(), 16);
        assert_eq!(&w.as_bytes()[..2], &[0x02, 0x01]);
        assert_eq!(w.as_bytes()[8], 0x08);
        assert_eq!(w.as_bytes()[15], 0x01);
    }

    #[test]
    fn string_includes_nul() {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_string("hi");
        assert_eq!(w.as_bytes(), &[0, 0, 0, 3, b'h', b'i', 0]);
    }

    #[test]
    fn empty_string_is_len_one_nul() {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_string("");
        assert_eq!(w.as_bytes(), &[0, 0, 0, 1, 0]);
    }

    #[test]
    fn reserve_and_patch() {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_u8(9);
        let at = w.reserve_u32();
        w.write_u8(7);
        w.patch_u32(at, 0xDEADBEEF);
        assert_eq!(w.as_bytes(), &[9, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF, 7]);
    }

    #[test]
    fn floats_round_through_bits() {
        let mut w = CdrWriter::new(ByteOrder::Little);
        w.write_f32(1.5);
        w.write_f64(-2.25);
        assert_eq!(w.len(), 16);
    }

    #[test]
    fn with_capacity_reserves_without_changing_output() {
        let mut a = CdrWriter::new(ByteOrder::Big);
        let mut b = CdrWriter::with_capacity(ByteOrder::Big, 64);
        assert!(b.is_empty());
        for w in [&mut a, &mut b] {
            w.write_u8(1);
            w.write_u64(7);
            w.write_string("same");
        }
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert!(b.into_bytes().capacity() >= 64, "reservation kept");
    }

    #[test]
    fn bool_encodes_single_octet() {
        let mut w = CdrWriter::new(ByteOrder::Big);
        w.write_bool(true);
        w.write_bool(false);
        assert_eq!(w.as_bytes(), &[1, 0]);
    }
}
