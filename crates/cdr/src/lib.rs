#![warn(missing_docs)]
//! CORBA Common Data Representation (CDR) marshalling.
//!
//! GIOP messages are marshalled using CDR (CORBA 2.2, chapter 13): every
//! primitive value is aligned to its natural size *relative to the start of
//! the stream*, and the byte order of the stream is chosen by the sender and
//! flagged in the enclosing GIOP header (or the leading octet of a CDR
//! encapsulation).
//!
//! This crate provides:
//!
//! * [`CdrWriter`] — an alignment-aware encoder with selectable endianness,
//! * [`CdrReader`] — the matching decoder,
//! * [`CdrEncode`] / [`CdrDecode`] — traits implemented for the CORBA
//!   primitive types, strings, sequences and a few composites,
//! * [`encapsulation`] — CDR encapsulations (self-describing nested buffers
//!   with a leading byte-order octet), used by GIOP service contexts.
//!
//! The FTMP paper (Fig. 2) encapsulates a GIOP message — and therefore a CDR
//! stream — inside the FTMP header; this crate is the innermost layer of that
//! stack.

pub mod decode;
pub mod encapsulation;
pub mod encode;
pub mod error;
pub mod types;

pub use decode::CdrReader;
pub use encapsulation::{decode_encapsulation, encode_encapsulation};
pub use encode::CdrWriter;
pub use error::CdrError;
pub use types::{CdrDecode, CdrEncode};

/// Byte order of a CDR stream.
///
/// GIOP flags bit 0 (and the leading octet of an encapsulation) select the
/// byte order: `false`/0 = big-endian, `true`/1 = little-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Network byte order (flag bit clear).
    Big,
    /// Little-endian (flag bit set).
    Little,
}

impl ByteOrder {
    /// The byte order of the host this code runs on.
    pub fn native() -> Self {
        if cfg!(target_endian = "little") {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        }
    }

    /// Decode from a GIOP flags bit / encapsulation octet.
    pub fn from_flag(little: bool) -> Self {
        if little {
            ByteOrder::Little
        } else {
            ByteOrder::Big
        }
    }

    /// Encode as a GIOP flags bit / encapsulation octet.
    pub fn as_flag(self) -> bool {
        matches!(self, ByteOrder::Little)
    }
}

/// Round-trip helper: encode `value` with `order`, starting at stream
/// offset 0.
pub fn to_bytes<T: CdrEncode>(value: &T, order: ByteOrder) -> Vec<u8> {
    let mut w = CdrWriter::new(order);
    value.encode(&mut w);
    w.into_bytes()
}

/// Round-trip helper: decode a `T` from `bytes` interpreted with `order`.
pub fn from_bytes<T: CdrDecode>(bytes: &[u8], order: ByteOrder) -> Result<T, CdrError> {
    let mut r = CdrReader::new(bytes, order);
    let v = T::decode(&mut r)?;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_order_flag_round_trip() {
        assert_eq!(ByteOrder::from_flag(true), ByteOrder::Little);
        assert_eq!(ByteOrder::from_flag(false), ByteOrder::Big);
        assert!(ByteOrder::Little.as_flag());
        assert!(!ByteOrder::Big.as_flag());
    }

    #[test]
    fn native_order_is_consistent() {
        let n = ByteOrder::native();
        assert_eq!(ByteOrder::from_flag(n.as_flag()), n);
    }
}
