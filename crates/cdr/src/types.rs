//! `CdrEncode`/`CdrDecode` traits and implementations for common types.

use crate::{CdrError, CdrReader, CdrWriter};

/// A value that can be marshalled into a CDR stream.
pub trait CdrEncode {
    /// Append this value to the writer (aligning as CDR requires).
    fn encode(&self, w: &mut CdrWriter);
}

/// A value that can be unmarshalled from a CDR stream.
pub trait CdrDecode: Sized {
    /// Read one value from the reader.
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError>;
}

macro_rules! prim {
    ($ty:ty, $wr:ident, $rd:ident) => {
        impl CdrEncode for $ty {
            fn encode(&self, w: &mut CdrWriter) {
                w.$wr(*self);
            }
        }
        impl CdrDecode for $ty {
            fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
                r.$rd()
            }
        }
    };
}

prim!(u8, write_u8, read_u8);
prim!(i8, write_i8, read_i8);
prim!(u16, write_u16, read_u16);
prim!(i16, write_i16, read_i16);
prim!(u32, write_u32, read_u32);
prim!(i32, write_i32, read_i32);
prim!(u64, write_u64, read_u64);
prim!(i64, write_i64, read_i64);
prim!(f32, write_f32, read_f32);
prim!(f64, write_f64, read_f64);
prim!(bool, write_bool, read_bool);

impl CdrEncode for String {
    fn encode(&self, w: &mut CdrWriter) {
        w.write_string(self);
    }
}

impl CdrEncode for &str {
    fn encode(&self, w: &mut CdrWriter) {
        w.write_string(self);
    }
}

impl CdrDecode for String {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        r.read_string()
    }
}

/// Sequences marshal as `unsigned long` count followed by the elements.
impl<T: CdrEncode> CdrEncode for Vec<T> {
    fn encode(&self, w: &mut CdrWriter) {
        w.write_u32(self.len() as u32);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: CdrDecode> CdrDecode for Vec<T> {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        // Elements are at least one octet each on the wire.
        let len = r.read_seq_len(1)?;
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl<T: CdrEncode, const N: usize> CdrEncode for [T; N] {
    fn encode(&self, w: &mut CdrWriter) {
        // CORBA arrays carry no length prefix (the type fixes it).
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: CdrDecode + Default + Copy, const N: usize> CdrDecode for [T; N] {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(r)?;
        }
        Ok(out)
    }
}

impl<A: CdrEncode, B: CdrEncode> CdrEncode for (A, B) {
    fn encode(&self, w: &mut CdrWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: CdrDecode, B: CdrDecode> CdrDecode for (A, B) {
    fn decode(r: &mut CdrReader<'_>) -> Result<Self, CdrError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes, ByteOrder};
    use proptest::prelude::*;

    fn rt<T: CdrEncode + CdrDecode + PartialEq + std::fmt::Debug>(v: T, order: ByteOrder) {
        let bytes = to_bytes(&v, order);
        let back: T = from_bytes(&bytes, order).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn vec_round_trip() {
        rt(vec![1u32, 2, 3], ByteOrder::Big);
        rt(Vec::<u64>::new(), ByteOrder::Little);
        rt(vec!["a".to_string(), "bb".to_string()], ByteOrder::Big);
    }

    #[test]
    fn array_has_no_length_prefix() {
        let bytes = to_bytes(&[1u8, 2, 3, 4], ByteOrder::Big);
        assert_eq!(bytes, vec![1, 2, 3, 4]);
    }

    #[test]
    fn tuple_round_trip() {
        rt((42u32, "x".to_string()), ByteOrder::Little);
    }

    proptest! {
        #[test]
        fn prop_u64_round_trip(v: u64, little: bool) {
            rt(v, ByteOrder::from_flag(little));
        }

        #[test]
        fn prop_string_round_trip(s in "[^\u{0}]{0,64}", little: bool) {
            rt(s, ByteOrder::from_flag(little));
        }

        #[test]
        fn prop_vec_u32_round_trip(v in proptest::collection::vec(any::<u32>(), 0..64), little: bool) {
            rt(v, ByteOrder::from_flag(little));
        }

        #[test]
        fn prop_mixed_stream_round_trip(
            a: u8, b: u32, c: u64, d in "[^\u{0}]{0,16}", e: i16, little: bool
        ) {
            let order = ByteOrder::from_flag(little);
            let mut w = CdrWriter::new(order);
            a.encode(&mut w); b.encode(&mut w); c.encode(&mut w);
            d.encode(&mut w); e.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = CdrReader::new(&bytes, order);
            prop_assert_eq!(u8::decode(&mut r).unwrap(), a);
            prop_assert_eq!(u32::decode(&mut r).unwrap(), b);
            prop_assert_eq!(u64::decode(&mut r).unwrap(), c);
            prop_assert_eq!(String::decode(&mut r).unwrap(), d);
            prop_assert_eq!(i16::decode(&mut r).unwrap(), e);
            prop_assert!(r.is_exhausted());
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Whatever the input, decoding returns Ok or Err — no panic, no
            // unbounded allocation.
            let _ = crate::from_bytes::<Vec<String>>(&bytes, ByteOrder::Big);
            let _ = crate::from_bytes::<Vec<u64>>(&bytes, ByteOrder::Little);
            let _ = crate::from_bytes::<String>(&bytes, ByteOrder::Big);
        }
    }
}
