//! Integration: warm-passive replication — only the primary executes,
//! backups apply shipped state, and failover replays the pending suffix.
//! (The FT-CORBA-style extension of the paper's active-replication model;
//! see `ftmp_orb::passive`.)

use ftmp::core::pgmp::ServerRegistration;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
};
use ftmp::net::{McastAddr, SimConfig, SimDuration, SimNet};
use ftmp::orb::servant::{decode_i64_result, encode_i64_arg, BankAccount};
use ftmp::orb::{InvocationResult, OrbEndpoint, OrbNode, ReplicationStyle};

const DOMAIN: McastAddr = McastAddr(500);
const GROUP: McastAddr = McastAddr(600);

fn og_server() -> ObjectGroupId {
    ObjectGroupId::new(2, 7)
}

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), og_server())
}

/// 1 client (P1) + 3 warm-passive server replicas (P2..P4).
fn build(seed: u64) -> SimNet<OrbNode> {
    let mut net = SimNet::new(SimConfig::with_seed(seed));
    net.set_classifier(ftmp::core::wire::classify);
    let servers: Vec<ProcessorId> = (2..=4).map(ProcessorId).collect();
    for id in 1..=4u32 {
        let mut proc = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(seed),
            ClockMode::Lamport,
        );
        let mut orb = OrbEndpoint::new();
        if id == 1 {
            orb.register_client(conn());
        } else {
            orb.host_replica(
                og_server(),
                b"acct".to_vec(),
                Box::new(BankAccount::with_balance(1_000)),
            );
            orb.set_warm_passive(og_server(), ProcessorId(id), servers.clone());
            proc.register_server(
                og_server(),
                ServerRegistration {
                    processors: servers.clone(),
                    pool: vec![(GroupId(10), GROUP)],
                },
                DOMAIN,
            );
        }
        net.add_node(id, OrbNode::new(proc, orb));
        net.with_node(id, |n, now, out| n.pump(now, out));
    }
    net.with_node(1, |n, now, out| {
        n.proc_mut()
            .open_connection(now, conn(), vec![ProcessorId(1)], DOMAIN);
        n.pump(now, out);
    });
    net.run_for(SimDuration::from_millis(100));
    assert!(
        net.node(1)
            .unwrap()
            .proc()
            .connection_group(conn())
            .is_some(),
        "connection established"
    );
    net
}

fn account_of(net: &SimNet<OrbNode>, id: u32) -> (i64, u64) {
    let snap = net
        .node(id)
        .unwrap()
        .orb()
        .servant(og_server())
        .unwrap()
        .snapshot();
    let mut acct = BankAccount::default();
    acct.restore(&snap);
    (acct.balance(), acct.ops_applied)
}

use ftmp::orb::Servant;

#[test]
fn only_the_primary_executes_and_backups_track_state() {
    let mut net = build(81);
    for i in 0..10i64 {
        net.with_node(1, move |n, now, out| {
            n.invoke(
                now,
                conn(),
                b"acct",
                "deposit",
                &encode_i64_arg(10 + i),
                out,
            );
        });
        net.run_for(SimDuration::from_millis(20));
    }
    net.run_for(SimDuration::from_millis(200));
    // All replicas converge on the same balance…
    let (b2, ops2) = account_of(&net, 2);
    let (b3, ops3) = account_of(&net, 3);
    let (b4, ops4) = account_of(&net, 4);
    assert_eq!(b2, 1_000 + (10..20).sum::<i64>());
    assert_eq!(b2, b3);
    assert_eq!(b3, b4);
    // …but only the primary (P2, smallest id) actually executed; the
    // backups' states came from shipped snapshots, so the op counter they
    // carry is the primary's.
    assert_eq!(ops2, 10, "primary executed everything");
    assert_eq!(ops3, 10, "backup state is the shipped snapshot");
    assert_eq!(ops4, 10);
    assert!(net.node(2).unwrap().orb().is_primary(og_server()));
    assert!(!net.node(3).unwrap().orb().is_primary(og_server()));
    assert_eq!(
        net.node(3).unwrap().orb().style_of(og_server()),
        ReplicationStyle::WarmPassive
    );
    // The client completed everything exactly once.
    let done = net.node_mut(1).unwrap().take_completions();
    assert_eq!(done.len(), 10);
}

#[test]
fn primary_failover_replays_pending_and_answers() {
    let mut net = build(82);
    // Normal operation.
    for _ in 0..5 {
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(100), out);
        });
        net.run_for(SimDuration::from_millis(20));
    }
    net.run_for(SimDuration::from_millis(100));
    let _ = net.node_mut(1).unwrap().take_completions();

    // The primary crashes. Requests issued while the survivors are still
    // detecting the fault get ordered and buffered as pending at backups.
    net.crash(2);
    for _ in 0..3 {
        net.with_node(1, |n, now, out| {
            n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(1), out);
        });
        net.run_for(SimDuration::from_millis(30));
    }
    // Fault detection, conviction, membership change, failover replay.
    net.run_for(SimDuration::from_millis(1_500));
    assert!(
        net.node(3).unwrap().orb().is_primary(og_server()),
        "P3 took over as primary"
    );
    // The client received replies for the in-flight requests (replayed by
    // the new primary).
    let done = net.node_mut(1).unwrap().take_completions();
    assert_eq!(done.len(), 3, "in-flight requests answered after failover");
    for c in &done {
        match &c.result {
            InvocationResult::Ok(b) => {
                assert!(decode_i64_result(b).unwrap() >= 1_500);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // Survivors agree on the final balance: 1000 + 5*100 + 3*1.
    let (b3, _) = account_of(&net, 3);
    let (b4, _) = account_of(&net, 4);
    assert_eq!(b3, 1_503);
    assert_eq!(b3, b4);

    // Service continues under the new primary.
    net.with_node(1, |n, now, out| {
        n.invoke(now, conn(), b"acct", "withdraw", &encode_i64_arg(3), out);
    });
    net.run_for(SimDuration::from_millis(200));
    let done = net.node_mut(1).unwrap().take_completions();
    assert_eq!(done.len(), 1);
    let (b3, _) = account_of(&net, 3);
    assert_eq!(b3, 1_500);
}

#[test]
fn double_failover_survives() {
    let mut net = build(83);
    net.with_node(1, |n, now, out| {
        n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(7), out);
    });
    net.run_for(SimDuration::from_millis(100));
    net.crash(2);
    net.run_for(SimDuration::from_millis(1_200));
    net.with_node(1, |n, now, out| {
        n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(7), out);
    });
    net.run_for(SimDuration::from_millis(200));
    net.crash(3);
    net.run_for(SimDuration::from_millis(1_500));
    assert!(net.node(4).unwrap().orb().is_primary(og_server()));
    net.with_node(1, |n, now, out| {
        n.invoke(now, conn(), b"acct", "deposit", &encode_i64_arg(7), out);
    });
    net.run_for(SimDuration::from_millis(300));
    let (b4, _) = account_of(&net, 4);
    assert_eq!(
        b4, 1_021,
        "three deposits applied exactly once across two failovers"
    );
    let done = net.node_mut(1).unwrap().take_completions();
    assert_eq!(done.len(), 3);
}
