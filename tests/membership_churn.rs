//! Integration: voluntary joins and leaves under traffic and loss (§7.1).
//!
//! Delivery agreement — including the joiner-suffix property — is asserted
//! by the `ftmp-check` oracle suite; the bodies keep the membership-state
//! assertions the oracles cannot see.

use bytes::Bytes;
use ftmp::check::Checker;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    ProtocolEvent, RequestNum, SimProcessor,
};
use ftmp::net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime};

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(100);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

fn make_net(seed: u64, loss: f64) -> SimNet<SimProcessor> {
    let cfg = SimConfig::with_seed(seed).loss(if loss > 0.0 {
        LossModel::Iid { p: loss }
    } else {
        LossModel::None
    });
    let mut net = SimNet::new(cfg);
    net.set_classifier(ftmp::core::wire::classify);
    net
}

fn add_founder(
    net: &mut SimNet<SimProcessor>,
    checker: &Checker,
    id: u32,
    founders: &[ProcessorId],
    seed: u64,
) {
    let mut e = Processor::new(
        ProcessorId(id),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    e.create_group(SimTime::ZERO, GROUP, ADDR, founders.to_vec());
    e.bind_connection(conn(), GROUP);
    net.add_node(id, SimProcessor::new(e));
    checker.attach(net, id);
    net.with_node(id, |n, now, out| n.pump_at(now, out));
}

fn add_joiner(net: &mut SimNet<SimProcessor>, checker: &Checker, id: u32, seed: u64) {
    let mut e = Processor::new(
        ProcessorId(id),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    e.expect_join(GROUP, ADDR);
    e.bind_connection(conn(), GROUP);
    net.add_node(id, SimProcessor::new(e));
    checker.attach(net, id);
    net.with_node(id, |n, now, out| n.pump_at(now, out));
}

fn send(net: &mut SimNet<SimProcessor>, id: u32, req: u64) {
    net.with_node(id, move |n, now, out| {
        let _ = n.engine_mut().multicast_request(
            now,
            conn(),
            RequestNum(req),
            Bytes::from(vec![req as u8]),
        );
        n.pump_at(now, out);
    });
}

fn sponsor(net: &mut SimNet<SimProcessor>, sponsor_id: u32, joiner: u32) {
    net.with_node(sponsor_id, move |n, now, out| {
        n.engine_mut()
            .add_processor(now, GROUP, ProcessorId(joiner));
        n.pump_at(now, out);
    });
}

fn membership_of(net: &SimNet<SimProcessor>, id: u32) -> Option<Vec<u32>> {
    net.node(id)
        .and_then(|n| n.engine().membership(GROUP))
        .map(|m| m.iter().map(|p| p.0).collect())
}

#[test]
fn sequential_joins_grow_the_group() {
    let seed = 21;
    let mut net = make_net(seed, 0.0);
    let founders = [ProcessorId(1), ProcessorId(2)];
    let checker = Checker::new(GROUP, &founders);
    for id in 1..=2 {
        add_founder(&mut net, &checker, id, &founders, seed);
    }
    for joiner in 3..=6u32 {
        add_joiner(&mut net, &checker, joiner, seed);
        sponsor(&mut net, 1, joiner);
        net.run_for(SimDuration::from_millis(80));
        for id in 1..=joiner {
            assert_eq!(
                membership_of(&net, id).unwrap().len(),
                joiner as usize,
                "P{id} after P{joiner} joined"
            );
        }
    }
    checker.finish(1..=6);
    checker.assert_clean("sequential joins");
}

#[test]
fn joins_complete_under_loss() {
    let seed = 22;
    let mut net = make_net(seed, 0.15);
    let founders = [ProcessorId(1), ProcessorId(2), ProcessorId(3)];
    let checker = Checker::new(GROUP, &founders);
    for id in 1..=3 {
        add_founder(&mut net, &checker, id, &founders, seed);
    }
    add_joiner(&mut net, &checker, 4, seed);
    sponsor(&mut net, 2, 4);
    net.run_for(SimDuration::from_millis(1_000));
    for id in 1..=4u32 {
        assert_eq!(membership_of(&net, id).unwrap().len(), 4, "P{id}");
    }
    checker.finish(1..=4);
    checker.assert_clean("join under loss");
}

#[test]
fn leave_then_rejoin_with_fresh_state() {
    let seed = 23;
    let mut net = make_net(seed, 0.0);
    let founders = [ProcessorId(1), ProcessorId(2), ProcessorId(3)];
    let checker = Checker::new(GROUP, &founders);
    for id in 1..=3 {
        add_founder(&mut net, &checker, id, &founders, seed);
    }
    net.run_for(SimDuration::from_millis(20));
    // P3 leaves.
    net.with_node(1, |n, now, out| {
        n.engine_mut().remove_processor(now, GROUP, ProcessorId(3));
        n.pump_at(now, out);
    });
    checker.retire(3);
    net.run_for(SimDuration::from_millis(100));
    assert!(membership_of(&net, 3).is_none(), "P3 left");
    assert_eq!(membership_of(&net, 1).unwrap(), vec![1, 2]);
    // P3 rejoins cold.
    let mut e = Processor::new(
        ProcessorId(3),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    e.expect_join(GROUP, ADDR);
    e.bind_connection(conn(), GROUP);
    net.revive(3, SimProcessor::new(e));
    checker.attach(&mut net, 3);
    net.with_node(3, |n, now, out| n.pump_at(now, out));
    sponsor(&mut net, 1, 3);
    net.run_for(SimDuration::from_millis(200));
    assert_eq!(membership_of(&net, 3).unwrap(), vec![1, 2, 3]);
    checker.finish(1..=3);
    checker.assert_clean("leave then rejoin");
    let evs = net.node_mut(3).unwrap().take_events();
    assert!(evs
        .iter()
        .any(|(_, e)| matches!(e, ProtocolEvent::JoinedGroup { .. })));
}

#[test]
fn joiner_delivery_suffix_matches_founders() {
    let seed = 24;
    let mut net = make_net(seed, 0.05);
    let founders = [ProcessorId(1), ProcessorId(2)];
    let checker = Checker::new(GROUP, &founders);
    for id in 1..=2 {
        add_founder(&mut net, &checker, id, &founders, seed);
    }
    // Pre-join traffic.
    for k in 0..10u64 {
        send(&mut net, (k % 2) as u32 + 1, k);
        net.run_for(SimDuration::from_millis(3));
    }
    net.run_for(SimDuration::from_millis(200));
    add_joiner(&mut net, &checker, 3, seed);
    sponsor(&mut net, 1, 3);
    net.run_for(SimDuration::from_millis(200));
    // Post-join traffic.
    for k in 10..25u64 {
        send(&mut net, (k % 3) as u32 + 1, k);
        net.run_for(SimDuration::from_millis(3));
    }
    net.run_for(SimDuration::from_millis(800));
    // The total-order oracle holds the joiner to exactly the founders'
    // suffix (a mid-log entry must track the agreed order from there on);
    // the counts below pin that the suffix was strict and non-empty.
    checker.finish(1..=3);
    checker.assert_clean("joiner suffix");
    let founder_count = net.node_mut(1).unwrap().take_deliveries().len();
    let joiner_count = net.node_mut(3).unwrap().take_deliveries().len();
    assert_eq!(founder_count, 25, "founders saw everything");
    assert!(
        joiner_count > 0 && joiner_count < 25,
        "joiner saw a strict suffix (got {joiner_count})"
    );
}

#[test]
fn concurrent_traffic_during_join_stays_ordered() {
    let seed = 25;
    let mut net = make_net(seed, 0.05);
    let founders = [ProcessorId(1), ProcessorId(2), ProcessorId(3)];
    let checker = Checker::new(GROUP, &founders);
    for id in 1..=3 {
        add_founder(&mut net, &checker, id, &founders, seed);
    }
    add_joiner(&mut net, &checker, 4, seed);
    // Traffic in flight while the join happens.
    for k in 0..5u64 {
        send(&mut net, (k % 3) as u32 + 1, k);
    }
    sponsor(&mut net, 1, 4);
    for k in 5..15u64 {
        send(&mut net, (k % 3) as u32 + 1, k);
        net.run_for(SimDuration::from_millis(2));
    }
    net.run_for(SimDuration::from_millis(800));
    // Founder agreement and the consistency of the joiner's suffix are the
    // total-order oracle's job; the count pins that nothing was lost.
    checker.finish(1..=4);
    checker.assert_clean("concurrent traffic during join");
    assert_eq!(net.node_mut(1).unwrap().take_deliveries().len(), 15);
}
