//! Integration: voluntary joins and leaves under traffic and loss (§7.1).

use bytes::Bytes;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    ProtocolEvent, RequestNum, SimProcessor,
};
use ftmp::net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime};

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(100);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

fn make_net(seed: u64, loss: f64) -> SimNet<SimProcessor> {
    let cfg = SimConfig::with_seed(seed).loss(if loss > 0.0 {
        LossModel::Iid { p: loss }
    } else {
        LossModel::None
    });
    let mut net = SimNet::new(cfg);
    net.set_classifier(ftmp::core::wire::classify);
    net
}

fn add_founder(net: &mut SimNet<SimProcessor>, id: u32, founders: &[ProcessorId], seed: u64) {
    let mut e = Processor::new(
        ProcessorId(id),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    e.create_group(SimTime::ZERO, GROUP, ADDR, founders.to_vec());
    e.bind_connection(conn(), GROUP);
    net.add_node(id, SimProcessor::new(e));
    net.with_node(id, |n, now, out| n.pump_at(now, out));
}

fn add_joiner(net: &mut SimNet<SimProcessor>, id: u32, seed: u64) {
    let mut e = Processor::new(
        ProcessorId(id),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    e.expect_join(GROUP, ADDR);
    e.bind_connection(conn(), GROUP);
    net.add_node(id, SimProcessor::new(e));
    net.with_node(id, |n, now, out| n.pump_at(now, out));
}

fn send(net: &mut SimNet<SimProcessor>, id: u32, req: u64) {
    net.with_node(id, move |n, now, out| {
        let _ = n.engine_mut().multicast_request(
            now,
            conn(),
            RequestNum(req),
            Bytes::from(vec![req as u8]),
        );
        n.pump_at(now, out);
    });
}

fn sponsor(net: &mut SimNet<SimProcessor>, sponsor_id: u32, joiner: u32) {
    net.with_node(sponsor_id, move |n, now, out| {
        n.engine_mut()
            .add_processor(now, GROUP, ProcessorId(joiner));
        n.pump_at(now, out);
    });
}

fn membership_of(net: &SimNet<SimProcessor>, id: u32) -> Option<Vec<u32>> {
    net.node(id)
        .and_then(|n| n.engine().membership(GROUP))
        .map(|m| m.iter().map(|p| p.0).collect())
}

#[test]
fn sequential_joins_grow_the_group() {
    let seed = 21;
    let mut net = make_net(seed, 0.0);
    let founders = [ProcessorId(1), ProcessorId(2)];
    for id in 1..=2 {
        add_founder(&mut net, id, &founders, seed);
    }
    for joiner in 3..=6u32 {
        add_joiner(&mut net, joiner, seed);
        sponsor(&mut net, 1, joiner);
        net.run_for(SimDuration::from_millis(80));
        for id in 1..=joiner {
            assert_eq!(
                membership_of(&net, id).unwrap().len(),
                joiner as usize,
                "P{id} after P{joiner} joined"
            );
        }
    }
}

#[test]
fn joins_complete_under_loss() {
    let seed = 22;
    let mut net = make_net(seed, 0.15);
    let founders = [ProcessorId(1), ProcessorId(2), ProcessorId(3)];
    for id in 1..=3 {
        add_founder(&mut net, id, &founders, seed);
    }
    add_joiner(&mut net, 4, seed);
    sponsor(&mut net, 2, 4);
    net.run_for(SimDuration::from_millis(1_000));
    for id in 1..=4u32 {
        assert_eq!(membership_of(&net, id).unwrap().len(), 4, "P{id}");
    }
}

#[test]
fn leave_then_rejoin_with_fresh_state() {
    let seed = 23;
    let mut net = make_net(seed, 0.0);
    let founders = [ProcessorId(1), ProcessorId(2), ProcessorId(3)];
    for id in 1..=3 {
        add_founder(&mut net, id, &founders, seed);
    }
    net.run_for(SimDuration::from_millis(20));
    // P3 leaves.
    net.with_node(1, |n, now, out| {
        n.engine_mut().remove_processor(now, GROUP, ProcessorId(3));
        n.pump_at(now, out);
    });
    net.run_for(SimDuration::from_millis(100));
    assert!(membership_of(&net, 3).is_none(), "P3 left");
    assert_eq!(membership_of(&net, 1).unwrap(), vec![1, 2]);
    // P3 rejoins cold.
    let mut e = Processor::new(
        ProcessorId(3),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    e.expect_join(GROUP, ADDR);
    e.bind_connection(conn(), GROUP);
    net.revive(3, SimProcessor::new(e));
    net.with_node(3, |n, now, out| n.pump_at(now, out));
    sponsor(&mut net, 1, 3);
    net.run_for(SimDuration::from_millis(200));
    assert_eq!(membership_of(&net, 3).unwrap(), vec![1, 2, 3]);
    let evs = net.node_mut(3).unwrap().take_events();
    assert!(evs
        .iter()
        .any(|(_, e)| matches!(e, ProtocolEvent::JoinedGroup { .. })));
}

#[test]
fn joiner_delivery_suffix_matches_founders() {
    let seed = 24;
    let mut net = make_net(seed, 0.05);
    let founders = [ProcessorId(1), ProcessorId(2)];
    for id in 1..=2 {
        add_founder(&mut net, id, &founders, seed);
    }
    // Pre-join traffic.
    for k in 0..10u64 {
        send(&mut net, (k % 2) as u32 + 1, k);
        net.run_for(SimDuration::from_millis(3));
    }
    net.run_for(SimDuration::from_millis(200));
    add_joiner(&mut net, 3, seed);
    sponsor(&mut net, 1, 3);
    net.run_for(SimDuration::from_millis(200));
    // Post-join traffic.
    for k in 10..25u64 {
        send(&mut net, (k % 3) as u32 + 1, k);
        net.run_for(SimDuration::from_millis(3));
    }
    net.run_for(SimDuration::from_millis(800));
    let seq_of = |net: &mut SimNet<SimProcessor>, id: u32| -> Vec<(u64, u32, u64)> {
        net.node_mut(id)
            .unwrap()
            .take_deliveries()
            .iter()
            .map(|(_, d)| (d.ts.0, d.source.0, d.seq.0))
            .collect()
    };
    let s1 = seq_of(&mut net, 1);
    let s2 = seq_of(&mut net, 2);
    let s3 = seq_of(&mut net, 3);
    assert_eq!(s1, s2, "founders agree");
    assert_eq!(s1.len(), 25, "founders saw everything");
    assert!(
        !s3.is_empty() && s3.len() < 25,
        "joiner saw a strict suffix"
    );
    assert_eq!(
        &s1[s1.len() - s3.len()..],
        &s3[..],
        "the joiner's view is exactly the founders' suffix"
    );
}

#[test]
fn concurrent_traffic_during_join_stays_ordered() {
    let seed = 25;
    let mut net = make_net(seed, 0.05);
    let founders = [ProcessorId(1), ProcessorId(2), ProcessorId(3)];
    for id in 1..=3 {
        add_founder(&mut net, id, &founders, seed);
    }
    add_joiner(&mut net, 4, seed);
    // Traffic in flight while the join happens.
    for k in 0..5u64 {
        send(&mut net, (k % 3) as u32 + 1, k);
    }
    sponsor(&mut net, 1, 4);
    for k in 5..15u64 {
        send(&mut net, (k % 3) as u32 + 1, k);
        net.run_for(SimDuration::from_millis(2));
    }
    net.run_for(SimDuration::from_millis(800));
    let seqs: Vec<Vec<(u64, u32, u64)>> = (1..=3u32)
        .map(|id| {
            net.node_mut(id)
                .unwrap()
                .take_deliveries()
                .iter()
                .map(|(_, d)| (d.ts.0, d.source.0, d.seq.0))
                .collect()
        })
        .collect();
    assert_eq!(seqs[0], seqs[1]);
    assert_eq!(seqs[1], seqs[2]);
    assert_eq!(seqs[0].len(), 15);
    // The joiner's suffix is consistent too.
    let s4: Vec<(u64, u32, u64)> = net
        .node_mut(4)
        .unwrap()
        .take_deliveries()
        .iter()
        .map(|(_, d)| (d.ts.0, d.source.0, d.seq.0))
        .collect();
    assert_eq!(&seqs[0][seqs[0].len() - s4.len()..], &s4[..]);
}
