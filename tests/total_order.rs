//! Integration: total-order guarantees through the public facade, across
//! seeds, loss models and group sizes.

use ftmp::core::{ClockMode, ProtocolConfig};
use ftmp::harness::worlds::FtmpWorld;
use ftmp::net::{LatencyModel, LossModel, SimConfig, SimDuration};
use std::collections::BTreeMap;

fn workload(w: &mut FtmpWorld, msgs: u64) {
    for k in 0..msgs {
        let id = (k % w.n as u64) as u32 + 1;
        w.send(id, 64 + (k as usize % 256));
        w.run_ms(1);
    }
    w.run_ms(500);
}

fn assert_order_properties(w: &mut FtmpWorld, expected: usize) {
    let res = w.collect();
    assert_eq!(res.delivered(), expected, "every message delivered");
    assert!(res.all_agree(), "identical sequences at all members");
    // Source order: per-source sequence numbers strictly increase.
    for seq in &res.sequences {
        let mut last: BTreeMap<u32, u64> = BTreeMap::new();
        for &(_, src, s) in seq {
            let e = last.entry(src).or_insert(0);
            assert!(s > *e, "source order violated for P{src}: {s} after {e}");
            *e = s;
        }
    }
    // Gap-free per source.
    for seq in &res.sequences {
        let mut count: BTreeMap<u32, u64> = BTreeMap::new();
        for &(_, src, _) in seq {
            *count.entry(src).or_insert(0) += 1;
        }
        let total: u64 = count.values().sum();
        assert_eq!(total as usize, expected);
    }
}

#[test]
fn agreement_across_seeds_lossless() {
    for seed in [1u64, 7, 42, 1999] {
        let mut w = FtmpWorld::new(
            4,
            SimConfig::with_seed(seed),
            ProtocolConfig::with_seed(seed),
            ClockMode::Lamport,
        );
        workload(&mut w, 40);
        assert_order_properties(&mut w, 40);
    }
}

#[test]
fn agreement_under_iid_loss() {
    for seed in [3u64, 11, 2024] {
        let sim = SimConfig::with_seed(seed).loss(LossModel::Iid { p: 0.12 });
        let mut w = FtmpWorld::new(5, sim, ProtocolConfig::with_seed(seed), ClockMode::Lamport);
        workload(&mut w, 60);
        assert_order_properties(&mut w, 60);
    }
}

#[test]
fn agreement_under_burst_loss_and_jitter() {
    let sim = SimConfig::with_seed(5)
        .loss(LossModel::Burst {
            p_good: 0.01,
            p_bad: 0.6,
            p_enter_bad: 0.02,
            p_exit_bad: 0.15,
        })
        .latency(LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(2_000),
        });
    let mut w = FtmpWorld::new(4, sim, ProtocolConfig::with_seed(5), ClockMode::Lamport);
    workload(&mut w, 50);
    assert_order_properties(&mut w, 50);
}

#[test]
fn agreement_with_synchronized_clocks() {
    let mut w = FtmpWorld::new(
        4,
        SimConfig::with_seed(8).loss(LossModel::Iid { p: 0.05 }),
        ProtocolConfig::with_seed(8),
        ClockMode::Synchronized { skew_us: 300 },
    );
    workload(&mut w, 40);
    assert_order_properties(&mut w, 40);
}

#[test]
fn large_group_converges() {
    let mut w = FtmpWorld::new(
        16,
        SimConfig::with_seed(16),
        ProtocolConfig::with_seed(16),
        ClockMode::Lamport,
    );
    workload(&mut w, 32);
    assert_order_properties(&mut w, 32);
}

#[test]
fn large_payloads_survive() {
    let mut w = FtmpWorld::new(
        3,
        SimConfig::with_seed(9).loss(LossModel::Iid { p: 0.05 }),
        ProtocolConfig::with_seed(9),
        ClockMode::Lamport,
    );
    for k in 0..10u64 {
        let id = (k % 3) as u32 + 1;
        w.send(id, 16 * 1024);
        w.run_ms(2);
    }
    w.run_ms(500);
    assert_order_properties(&mut w, 10);
}
