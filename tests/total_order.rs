//! Integration: total-order guarantees through the public facade, across
//! seeds, loss models and group sizes.
//!
//! The order properties themselves (source order, causal order, total
//! order, gap-freedom, duplicate suppression, reclamation safety) are
//! checked by the `ftmp-check` oracle suite attached to every member; the
//! test bodies only assert workload-specific expectations like delivery
//! counts.

use ftmp::check::Checker;
use ftmp::core::{ClockMode, ProtocolConfig};
use ftmp::harness::worlds::FtmpWorld;
use ftmp::net::{LatencyModel, LossModel, SimConfig, SimDuration};

fn workload(w: &mut FtmpWorld, msgs: u64) {
    for k in 0..msgs {
        let id = (k % w.n as u64) as u32 + 1;
        w.send(id, 64 + (k as usize % 256));
        w.run_ms(1);
    }
    w.run_ms(500);
}

fn assert_order_properties(w: &mut FtmpWorld, checker: &Checker, expected: usize) {
    let res = w.collect();
    assert_eq!(res.delivered(), expected, "every message delivered");
    checker.finish(w.live());
    checker.assert_clean("total_order workload");
    assert_eq!(
        checker.delivered(),
        expected as u64 * u64::from(w.n),
        "each member delivered the full workload"
    );
}

#[test]
fn agreement_across_seeds_lossless() {
    for seed in [1u64, 7, 42, 1999] {
        let mut w = FtmpWorld::new(
            4,
            SimConfig::with_seed(seed),
            ProtocolConfig::with_seed(seed),
            ClockMode::Lamport,
        );
        let checker = w.attach_checker();
        workload(&mut w, 40);
        assert_order_properties(&mut w, &checker, 40);
    }
}

#[test]
fn agreement_under_iid_loss() {
    for seed in [3u64, 11, 2024] {
        let sim = SimConfig::with_seed(seed).loss(LossModel::Iid { p: 0.12 });
        let mut w = FtmpWorld::new(5, sim, ProtocolConfig::with_seed(seed), ClockMode::Lamport);
        let checker = w.attach_checker();
        workload(&mut w, 60);
        assert_order_properties(&mut w, &checker, 60);
    }
}

#[test]
fn agreement_under_burst_loss_and_jitter() {
    let sim = SimConfig::with_seed(5)
        .loss(LossModel::Burst {
            p_good: 0.01,
            p_bad: 0.6,
            p_enter_bad: 0.02,
            p_exit_bad: 0.15,
        })
        .latency(LatencyModel::Uniform {
            min: SimDuration::from_micros(100),
            max: SimDuration::from_micros(2_000),
        });
    let mut w = FtmpWorld::new(4, sim, ProtocolConfig::with_seed(5), ClockMode::Lamport);
    let checker = w.attach_checker();
    workload(&mut w, 50);
    assert_order_properties(&mut w, &checker, 50);
}

#[test]
fn agreement_with_synchronized_clocks() {
    let mut w = FtmpWorld::new(
        4,
        SimConfig::with_seed(8).loss(LossModel::Iid { p: 0.05 }),
        ProtocolConfig::with_seed(8),
        ClockMode::Synchronized { skew_us: 300 },
    );
    let checker = w.attach_checker();
    workload(&mut w, 40);
    assert_order_properties(&mut w, &checker, 40);
}

#[test]
fn large_group_converges() {
    let mut w = FtmpWorld::new(
        16,
        SimConfig::with_seed(16),
        ProtocolConfig::with_seed(16),
        ClockMode::Lamport,
    );
    let checker = w.attach_checker();
    workload(&mut w, 32);
    assert_order_properties(&mut w, &checker, 32);
}

#[test]
fn large_payloads_survive() {
    let mut w = FtmpWorld::new(
        3,
        SimConfig::with_seed(9).loss(LossModel::Iid { p: 0.05 }),
        ProtocolConfig::with_seed(9),
        ClockMode::Lamport,
    );
    let checker = w.attach_checker();
    for k in 0..10u64 {
        let id = (k % 3) as u32 + 1;
        w.send(id, 16 * 1024);
        w.run_ms(2);
    }
    w.run_ms(500);
    assert_order_properties(&mut w, &checker, 10);
}
