//! Integration: the FTMP engine on the threaded live transport — real
//! threads, wall-clock heartbeats, injected loss — reaching the same
//! agreement guarantees as the simulator.

use bytes::Bytes;
use ftmp::core::{
    Action, ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId,
    ProtocolConfig, RequestNum,
};
use ftmp::net::live::LiveNet;
use ftmp::net::{McastAddr, Packet, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(1);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

/// Run `n` endpoint threads for `publishes` rounds each; return each
/// endpoint's delivered sequence as `(source, seq)` pairs.
fn run_live(n: u32, publishes: u64, loss: f64, seed: u64) -> Vec<Vec<(u32, u64)>> {
    let hub = LiveNet::new();
    hub.set_loss(loss);
    let start = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let members: Vec<ProcessorId> = (1..=n).map(ProcessorId).collect();
    let (report_tx, report_rx) = mpsc::channel::<(u32, Vec<(u32, u64)>)>();
    let mut handles = Vec::new();
    for id in 1..=n {
        let (handle, rx) = hub.join(id);
        handle.subscribe(ADDR);
        let members = members.clone();
        let stop = Arc::clone(&stop);
        let report = report_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut engine = Processor::new(
                ProcessorId(id),
                ProtocolConfig::with_seed(seed),
                ClockMode::Lamport,
            );
            let now = || SimTime(start.elapsed().as_micros() as u64);
            engine.create_group(now(), GROUP, ADDR, members);
            engine.bind_connection(conn(), GROUP);
            let mut delivered = Vec::new();
            let mut published = 0u64;
            let mut last_pub = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                if let Ok(pkt) = rx.recv_timeout(Duration::from_micros(300)) {
                    engine.handle_packet(now(), &pkt);
                }
                engine.tick(now());
                if published < publishes && last_pub.elapsed() >= Duration::from_millis(5) {
                    published += 1;
                    last_pub = Instant::now();
                    let _ = engine.multicast_request(
                        now(),
                        conn(),
                        RequestNum(u64::from(id) * 1000 + published),
                        Bytes::from(vec![id as u8]),
                    );
                }
                for a in engine.drain_actions() {
                    match a {
                        Action::Send { addr, payload } => {
                            handle.send(Packet::new(id, addr, payload));
                        }
                        Action::Deliver(d) => delivered.push((d.source.0, d.seq.0)),
                        _ => {}
                    }
                }
            }
            report.send((id, delivered)).ok();
        }));
    }
    drop(report_tx);
    // Give the threads time to publish and settle.
    std::thread::sleep(Duration::from_millis(
        5 * publishes + 400 + (loss * 2_000.0) as u64,
    ));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let mut views: Vec<(u32, Vec<(u32, u64)>)> = report_rx.iter().collect();
    views.sort_by_key(|(id, _)| *id);
    views.into_iter().map(|(_, v)| v).collect()
}

#[test]
fn live_threads_agree_lossless() {
    let views = run_live(3, 6, 0.0, 11);
    assert_eq!(views.len(), 3);
    assert_eq!(views[0].len(), 18, "all 18 messages delivered");
    assert_eq!(views[0], views[1]);
    assert_eq!(views[1], views[2]);
}

#[test]
fn live_threads_agree_under_loss() {
    let views = run_live(3, 6, 0.10, 13);
    assert_eq!(
        views[0].len(),
        18,
        "NACK recovery works on real threads too"
    );
    assert_eq!(views[0], views[1]);
    assert_eq!(views[1], views[2]);
}

#[test]
fn live_threads_larger_group() {
    let views = run_live(5, 4, 0.05, 17);
    assert_eq!(views[0].len(), 20);
    for v in &views[1..] {
        assert_eq!(&views[0], v);
    }
}
