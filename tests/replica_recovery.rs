//! Integration: the full §7.2 recovery story — a server replica crashes,
//! the survivors convict it and reconfigure, and the fault tolerance
//! infrastructure activates a replacement replica on a fresh processor from
//! a donor's snapshot plus log replay. The replacement then serves
//! identically to the survivors.

use ftmp::core::{ProcessorId, ProtocolConfig, ProtocolEvent};
use ftmp::harness::worlds::{OrbWorld, ORB_GROUP_ADDR};
use ftmp::net::SimConfig;
use ftmp::orb::servant::decode_i64_result;
use ftmp::orb::{OrbEndpoint, OrbNode};

fn counter() -> Box<dyn ftmp::orb::Servant> {
    Box::new(ftmp::orb::Counter::default())
}

fn counter_value(w: &OrbWorld, id: u32) -> i64 {
    let snap = w
        .net
        .node(id)
        .unwrap()
        .orb()
        .servant(w.conn().server)
        .unwrap()
        .snapshot();
    decode_i64_result(&snap).unwrap()
}

#[test]
fn crashed_replica_replaced_via_snapshot_and_log_replay() {
    let mut w = OrbWorld::new(
        1,
        3,
        SimConfig::with_seed(71),
        ProtocolConfig::with_seed(71),
        counter,
    );
    let conn = w.conn();
    let og = conn.server;
    let group = w
        .net
        .node(1)
        .unwrap()
        .proc()
        .connection_group(conn)
        .expect("established");

    // Phase 1: 10 invocations, then capture a snapshot at the donor (P2,
    // the first server).
    for _ in 0..10 {
        w.invoke_all("add", 1);
        w.run_ms(15);
    }
    w.run_ms(100);
    let donor = w.servers[0];
    let snapshot = w
        .net
        .node(donor)
        .unwrap()
        .orb()
        .servant(og)
        .unwrap()
        .snapshot();
    let snapshot_ts = w
        .net
        .node(donor)
        .unwrap()
        .orb()
        .log
        .entries(conn)
        .last()
        .map(|e| e.ts)
        .expect("log has entries");

    // Phase 2: 10 more invocations (these will be replayed from the log),
    // then a server replica crashes and the survivors reconfigure.
    for _ in 0..10 {
        w.invoke_all("add", 1);
        w.run_ms(15);
    }
    w.run_ms(100);
    let victim = *w.servers.last().unwrap();
    w.net.crash(victim);
    w.run_ms(1_000);
    let events = w.net.node_mut(donor).unwrap().take_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ProtocolEvent::FaultReport { processor, .. } if processor.0 == victim
        )),
        "fault reported"
    );

    // Phase 3: activate a replacement on fresh processor P9 — restore the
    // donor's snapshot, replay the donor's log after the snapshot point,
    // and join the processor group sponsored by the donor.
    let replay: Vec<ftmp::orb::log::LogEntry> = w
        .net
        .node(donor)
        .unwrap()
        .orb()
        .log
        .replay_after(conn, snapshot_ts)
        .cloned()
        .collect();
    assert!(!replay.is_empty(), "phase-2 traffic is in the donor's log");

    let new_id = 9u32;
    let mut proc = ftmp::core::Processor::new(
        ProcessorId(new_id),
        ProtocolConfig::with_seed(71),
        ftmp::core::ClockMode::Lamport,
    );
    proc.expect_join(group, ORB_GROUP_ADDR);
    proc.bind_connection(conn, group);
    let mut orb = OrbEndpoint::new();
    orb.activate_replica(og, b"obj".to_vec(), counter(), &snapshot, conn, &replay);
    w.net.add_node(new_id, OrbNode::new(proc, orb));
    w.net.with_node(new_id, |n, now, out| n.pump(now, out));
    // The replayed state already equals the donors'.
    let snap = w
        .net
        .node(new_id)
        .unwrap()
        .orb()
        .servant(og)
        .unwrap()
        .snapshot();
    assert_eq!(decode_i64_result(&snap), Some(20), "snapshot + replay = 20");

    // The donor sponsors the join.
    w.net.with_node(donor, move |n, now, out| {
        n.proc_mut().add_processor(now, group, ProcessorId(new_id));
        n.pump(now, out);
    });
    w.run_ms(500);
    let members = w.net.node(donor).unwrap().proc().membership(group).unwrap();
    assert!(
        members.contains(&ProcessorId(new_id)),
        "replacement joined: {members:?}"
    );

    // Phase 4: more invocations; the replacement applies them like everyone.
    for _ in 0..5 {
        w.invoke_all("add", 1);
        w.run_ms(40);
    }
    w.run_ms(500);
    for &id in &[w.servers[0], w.servers[1]] {
        assert_eq!(counter_value(&w, id), 25, "survivor P{id}");
    }
    let snap = w
        .net
        .node(new_id)
        .unwrap()
        .orb()
        .servant(og)
        .unwrap()
        .snapshot();
    assert_eq!(
        decode_i64_result(&snap),
        Some(25),
        "the replacement replica tracks the group"
    );
    // And the client saw every invocation complete exactly once.
    let (done, _) = w.drain_completions();
    assert_eq!(done.len(), 25);
}
