//! The conformance schedule-sweep: every fault scenario in the matrix,
//! `CONFORMANCE_SEEDS` seeds each (default 2 — CI runs wider), all seven
//! paper-property oracles attached to every processor. Zero violations are
//! expected at any budget; a failure panics with the first counterexample
//! (violating observation window plus the FTMP-filtered wire trace).
//!
//! The run also writes `CONFORMANCE_verdicts.json` next to the manifest —
//! the machine-readable verdict CI uploads as an artifact (the
//! `BENCH_pack.json` convention).

use ftmp::check::{run_sweep, seed_budget, Scenario, SweepConfig};

#[test]
fn fault_matrix_sweeps_clean() {
    // Scenario::matrix() is the single source of truth for this job's
    // cells: everything in Scenario::ALL except LargeGroup (64/128
    // members; one 128-member cell costs as much as the rest of the matrix
    // combined — it runs in the dedicated `large-group` CI job via
    // `ftmp-check`'s large_group tests). New scenario axes are picked up
    // here automatically.
    let scenarios: Vec<Scenario> = Scenario::matrix();
    let cfg = SweepConfig {
        base_seed: 0xC0F0,
        seeds_per_scenario: seed_budget(2),
        steps: 60,
        trace_capacity: 8192,
        scenarios,
    };
    let report = run_sweep(&cfg);
    let json = report.to_json();
    // Best-effort artifact; the assertions below are the gate.
    let _ = std::fs::write(
        concat!(env!("CARGO_MANIFEST_DIR"), "/CONFORMANCE_verdicts.json"),
        &json,
    );
    assert_eq!(
        report.executions(),
        cfg.scenarios.len() as u64 * cfg.seeds_per_scenario
    );
    assert!(
        report.delivered() > 0,
        "sweep produced no deliveries — driver broken"
    );
    for cell in &report.cells {
        assert_eq!(
            cell.violations,
            0,
            "{} seed {}: conformance violation\n{}",
            cell.scenario,
            cell.seed,
            cell.counterexample.as_deref().unwrap_or("(none recorded)")
        );
    }
    assert!(report.ok());
}
