//! Integration: the DESIGN.md §12 durability story.
//!
//! 1. Attaching a real on-disk [`DurableLog`] to every member must not
//!    perturb the wire — the run still produces the exact golden FNV trace
//!    hash pinned since the pre-packing protocol, and the log holds every
//!    ordered delivery.
//! 2. Crash → restart → rejoin with *delta* state transfer: a server
//!    replica with a durable log crashes, restarts from its own log (no
//!    donor snapshot), fetches only the donor's suffix past its persisted
//!    horizon, rejoins under the **same** processor id, and serves
//!    identically to the survivors.

use bytes::Bytes;
use ftmp::core::{
    wire, ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    ProtocolEvent, RequestNum, SimProcessor,
};
use ftmp::harness::worlds::{OrbWorld, ORB_GROUP_ADDR};
use ftmp::net::{McastAddr, Outbox, SimConfig, SimDuration, SimNet, SimTime};
use ftmp::orb::log::LogEntry;
use ftmp::orb::servant::decode_i64_result;
use ftmp::orb::{OrbEndpoint, OrbNode};
use ftmp::store::{recover, scratch_dir, DurableLog, LogConfig, LogRecord, RecoveredState};
use ftmp_check::trace_hash;

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(100);

/// The hash `ftmp-core`'s golden test pins for this exact scenario.
const GOLDEN: u64 = 0x40E7_EDBA_EE0B_E021;

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

#[test]
fn durable_log_does_not_perturb_the_golden_trace() {
    // The golden scenario from `ftmp-core`'s trace-hash test — three
    // members, each bursting three multicasts, 100 ms — byte-for-byte,
    // with a real on-disk log attached to every node.
    let members: Vec<ProcessorId> = (1..=3).map(ProcessorId).collect();
    let mut net = SimNet::new(SimConfig::with_seed(7));
    net.set_classifier(wire::classify);
    net.set_message_counter(wire::message_count);
    let dirs: Vec<std::path::PathBuf> = (1..=3).map(|_| scratch_dir("golden-dlog")).collect();
    for id in 1..=3u32 {
        let mut engine = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(7),
            ClockMode::Lamport,
        );
        engine.create_group(SimTime::ZERO, GROUP, ADDR, members.clone());
        let log = DurableLog::open(&dirs[id as usize - 1], LogConfig::default()).unwrap();
        engine.set_delivery_log(Box::new(log));
        let mut node = SimProcessor::new(engine);
        let mut out = Outbox::default();
        node.pump(&mut out);
        net.add_node(id, node);
        net.subscribe(id, ADDR);
    }
    for id in 1..=3u32 {
        net.with_node(id, |n, _, _| {
            n.engine_mut().bind_connection(conn(), GROUP);
        });
    }
    net.enable_trace(1 << 16);
    for id in 1u32..=3 {
        net.with_node(id, |n, now, out| {
            for k in 0..3u64 {
                n.engine_mut()
                    .multicast_request(
                        now,
                        conn(),
                        RequestNum(u64::from(id) * 10 + k),
                        Bytes::from(vec![id as u8; 32]),
                    )
                    .unwrap();
            }
            n.pump(out);
        });
    }
    net.run_for(SimDuration::from_millis(100));
    assert_eq!(
        trace_hash(net.trace().expect("trace enabled")),
        GOLDEN,
        "attaching a durable delivery log changed the wire trace"
    );
    // The logs are real: every node persisted all nine deliveries.
    drop(net);
    for dir in &dirs {
        let rec = recover(dir).unwrap();
        let delivered = rec
            .records
            .iter()
            .filter(|r| matches!(r, LogRecord::Delivered(_)))
            .count();
        assert_eq!(delivered, 9, "3 sources x 3 requests at every member");
        std::fs::remove_dir_all(dir).unwrap();
    }
}

fn counter() -> Box<dyn ftmp::orb::Servant> {
    Box::new(ftmp::orb::Counter::default())
}

fn counter_value(w: &OrbWorld, id: u32) -> i64 {
    let snap = w
        .net
        .node(id)
        .unwrap()
        .orb()
        .servant(w.conn().server)
        .unwrap()
        .snapshot();
    decode_i64_result(&snap).unwrap()
}

/// Recovered Delivered records for `conn`, classified back into replayable
/// log entries (requests and replies; control GIOP drops out).
fn own_entries(records: &[LogRecord], conn: ConnectionId) -> Vec<LogEntry> {
    records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Delivered(d) if d.conn == conn => {
                LogEntry::classify(d.request_num, d.source, d.ts, d.giop.clone())
            }
            _ => None,
        })
        .collect()
}

#[test]
fn crashed_server_restarts_from_durable_log_with_delta_transfer() {
    let mut w = OrbWorld::new(
        1,
        3,
        SimConfig::with_seed(71),
        ProtocolConfig::with_seed(71),
        counter,
    );
    let conn = w.conn();
    let og = conn.server;
    let group = w
        .net
        .node(1)
        .unwrap()
        .proc()
        .connection_group(conn)
        .expect("established");

    // The victim server persists its deliveries from here on; a small
    // segment size makes the run span several segments.
    let victim = *w.servers.last().unwrap();
    let dir = scratch_dir("orb-delta");
    let log = DurableLog::open(
        &dir,
        LogConfig {
            segment_bytes: 2048,
        },
    )
    .unwrap();
    w.net.with_node(victim, move |n, _, _| {
        n.proc_mut().set_delivery_log(Box::new(log));
    });

    // Phase 1: 20 invocations reach all three servers.
    for _ in 0..20 {
        w.invoke_all("add", 1);
        w.run_ms(15);
    }
    w.run_ms(100);
    assert_eq!(counter_value(&w, victim), 20);

    // Phase 2: the victim crashes; the survivors convict and reconfigure.
    w.net.crash(victim);
    w.run_ms(1_000);
    let donor = w.servers[0];
    let events = w.net.node_mut(donor).unwrap().take_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ProtocolEvent::FaultReport { processor, .. } if processor.0 == victim
        )),
        "fault reported"
    );

    // Phase 3: 5 invocations the victim never sees — the delta it must
    // fetch from a donor.
    for _ in 0..5 {
        w.invoke_all("add", 1);
        w.run_ms(15);
    }
    w.run_ms(100);

    // Phase 4: restart from the durable log. Own replay rebuilds the
    // pre-crash state — no donor snapshot — and re-derives the horizon;
    // the donor contributes only the suffix past it.
    let recovered = recover(&dir).unwrap();
    assert_eq!(recovered.stats.records_quarantined, 0, "clean crash");
    let state = RecoveredState::from_records(&recovered.records);
    let horizon = state.horizon_of(group);
    assert!(horizon.0 > 0, "the victim persisted a delivery horizon");
    let own = own_entries(&recovered.records, conn);
    assert!(own.len() >= 20, "all 20 requests persisted: {}", own.len());

    let donor_node = w.net.node(donor).unwrap();
    let full = donor_node.orb().log.entries(conn).len();
    let delta: Vec<LogEntry> = donor_node
        .orb()
        .log
        .replay_after(conn, horizon)
        .cloned()
        .collect();
    assert!(!delta.is_empty(), "phase-3 traffic is past the horizon");
    assert!(
        delta.len() < full,
        "delta transfer ({} entries) must be smaller than the donor's full log ({full})",
        delta.len()
    );

    let mut proc = Processor::new(
        ProcessorId(victim),
        ProtocolConfig::with_seed(72),
        ClockMode::Lamport,
    );
    proc.expect_join(group, ORB_GROUP_ADDR);
    proc.bind_connection(conn, group);
    let relog = DurableLog::open(
        &dir,
        LogConfig {
            segment_bytes: 2048,
        },
    )
    .unwrap();
    proc.set_delivery_log(Box::new(relog));
    let mut orb = OrbEndpoint::new();
    orb.activate_replica_delta(og, b"obj".to_vec(), counter(), conn, &own, &delta);
    w.net.revive(victim, OrbNode::new(proc, orb));
    w.net.with_node(victim, |n, now, out| n.pump(now, out));
    // Own replay (20) plus the donor delta (5) already equals the donors'.
    assert_eq!(counter_value(&w, victim), 25, "own replay + delta = 25");

    // The donor sponsors the rejoin under the old processor id.
    w.net.with_node(donor, move |n, now, out| {
        n.proc_mut().add_processor(now, group, ProcessorId(victim));
        n.pump(now, out);
    });
    w.run_ms(500);
    let members = w.net.node(donor).unwrap().proc().membership(group).unwrap();
    assert!(
        members.contains(&ProcessorId(victim)),
        "restarted member rejoined: {members:?}"
    );

    // Phase 5: more invocations; the restarted replica tracks the group.
    for _ in 0..5 {
        w.invoke_all("add", 1);
        w.run_ms(40);
    }
    w.run_ms(500);
    for &id in &[w.servers[0], w.servers[1], victim] {
        assert_eq!(counter_value(&w, id), 30, "server P{id}");
    }
    // The client saw every invocation complete exactly once.
    let (done, _) = w.drain_completions();
    assert_eq!(done.len(), 30);

    // The second incarnation kept persisting: recovery now sees both
    // incarnations' segments as one history.
    drop(w);
    let again = recover(&dir).unwrap();
    assert!(
        again.records.len() > recovered.records.len(),
        "post-restart deliveries were persisted"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
