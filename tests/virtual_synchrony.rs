//! Integration: virtual synchrony — survivors of a membership change have
//! delivered exactly the same messages, whatever the crash timing.
//!
//! Agreement, ordering and flush-atomicity are asserted by the `ftmp-check`
//! oracle suite; the test bodies keep the membership-state and protocol-
//! event assertions the oracles cannot see.

use ftmp::core::{ClockMode, ProtocolConfig, ProtocolEvent};
use ftmp::harness::worlds::FtmpWorld;
use ftmp::net::{LossModel, SimConfig};

/// Crash one member mid-traffic at a seed-dependent moment; assert the
/// survivors' delivery sequences are identical and the membership change
/// installed everywhere.
fn crash_scenario(seed: u64, n: u32, loss: f64, crash_after_ms: u64) {
    let sim = SimConfig::with_seed(seed).loss(if loss > 0.0 {
        LossModel::Iid { p: loss }
    } else {
        LossModel::None
    });
    let mut w = FtmpWorld::new(n, sim, ProtocolConfig::with_seed(seed), ClockMode::Lamport);
    let checker = w.attach_checker();
    let victim = n; // highest id crashes
    let mut sent = 0u64;
    for step in 0..crash_after_ms {
        let id = (step % n as u64) as u32 + 1;
        w.send(id, 64);
        sent += 1;
        w.run_ms(1);
    }
    w.net.crash(victim);
    checker.retire(victim);
    // Survivors keep sending through the reconfiguration.
    for step in 0..40u64 {
        let id = (step % (n as u64 - 1)) as u32 + 1;
        w.send(id, 64);
        sent += 1;
        w.run_ms(5);
    }
    w.run_ms(2_000);
    // The oracle suite holds the survivors to agreement, gap-freedom and a
    // consistent virtual-synchrony flush at the view change.
    checker.finish(w.live());
    checker.assert_clean(&format!("crash_scenario seed {seed}"));
    let res = w.collect();
    // Survivors must have everything the survivors sent; the victim's
    // unacknowledged tail may legitimately be absent, but whatever *is*
    // delivered from it is delivered by all (total-order oracle above).
    let survivor_msgs = res.sequences[0]
        .iter()
        .filter(|&&(_, src, _)| src != victim)
        .count() as u64;
    let survivor_sent = sent
        - (0..crash_after_ms)
            .filter(|s| (s % n as u64) + 1 == victim as u64)
            .count() as u64;
    assert_eq!(
        survivor_msgs, survivor_sent,
        "seed {seed}: survivor messages lost"
    );
    // Membership change installed at every survivor.
    for id in 1..n {
        let members = w
            .net
            .node(id)
            .unwrap()
            .engine()
            .membership(w.group())
            .unwrap();
        assert_eq!(
            members.len(),
            (n - 1) as usize,
            "seed {seed}: P{id} membership"
        );
        let evs = w.net.node_mut(id).unwrap().take_events();
        assert!(
            evs.iter()
                .any(|(_, e)| matches!(e, ProtocolEvent::FaultReport { .. })),
            "seed {seed}: P{id} no fault report"
        );
    }
}

#[test]
fn virtual_synchrony_across_crash_timings() {
    for (seed, after) in [(1u64, 5u64), (2, 13), (3, 27), (4, 40)] {
        crash_scenario(seed, 4, 0.0, after);
    }
}

#[test]
fn virtual_synchrony_under_loss() {
    for (seed, after) in [(10u64, 9u64), (11, 21), (12, 33)] {
        crash_scenario(seed, 4, 0.08, after);
    }
}

#[test]
fn virtual_synchrony_larger_group() {
    crash_scenario(77, 7, 0.05, 20);
}

#[test]
fn two_sequential_crashes() {
    let seed = 55u64;
    let mut w = FtmpWorld::new(
        5,
        SimConfig::with_seed(seed),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    let checker = w.attach_checker();
    for k in 0..20u64 {
        w.send((k % 5) as u32 + 1, 64);
        w.run_ms(2);
    }
    w.net.crash(5);
    checker.retire(5);
    w.run_ms(1_000);
    for k in 0..10u64 {
        w.send((k % 4) as u32 + 1, 64);
        w.run_ms(2);
    }
    w.net.crash(4);
    checker.retire(4);
    w.run_ms(1_500);
    checker.finish(w.live());
    checker.assert_clean("two_sequential_crashes");
    for id in 1..=3u32 {
        assert_eq!(
            w.net
                .node(id)
                .unwrap()
                .engine()
                .membership(w.group())
                .unwrap()
                .len(),
            3,
            "P{id} sees the 3-member group"
        );
    }
}

#[test]
fn majority_partition_makes_progress_and_minority_stalls() {
    let seed = 66u64;
    let mut w = FtmpWorld::new(
        5,
        SimConfig::with_seed(seed),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    let checker = w.attach_checker();
    w.run_ms(20);
    let _ = w.collect();
    // Partition {1,2,3} | {4,5}. The stalled minority is retired from the
    // oracles' convergence duties; everything it *does* deliver is still
    // order-checked.
    w.net.partition(vec![vec![1, 2, 3], vec![4, 5]]);
    checker.retire(4);
    checker.retire(5);
    w.run_ms(2_000);
    // Majority side convicts 4 and 5 and resumes.
    for id in 1..=3u32 {
        let members = w
            .net
            .node(id)
            .unwrap()
            .engine()
            .membership(w.group())
            .unwrap();
        assert_eq!(members.len(), 3, "majority side reconfigured at P{id}");
    }
    // Minority side cannot reach the conviction quorum (3 of 5): it stays
    // in the old membership (possibly still reconfiguring), stalled.
    for id in 4..=5u32 {
        let members = w
            .net
            .node(id)
            .unwrap()
            .engine()
            .membership(w.group())
            .unwrap();
        assert_eq!(
            members.len(),
            5,
            "minority side must not install a split-brain membership at P{id}"
        );
    }
    // Progress on the majority side only.
    w.send(1, 64);
    w.send(4, 64);
    w.run_ms(500);
    checker.finish([1, 2, 3]);
    checker.assert_clean("majority partition");
    let res = w.collect();
    // sequences: nodes 1..5 in id order; majority delivered its message.
    assert!(res.sequences[0].iter().any(|&(_, src, _)| src == 1));
    assert!(
        !res.sequences[3].iter().any(|&(_, src, _)| src == 4),
        "minority must not deliver new messages while stalled"
    );
}

#[test]
fn healed_minority_learns_of_its_exclusion_and_leaves() {
    let seed = 67u64;
    let mut w = FtmpWorld::new(
        5,
        SimConfig::with_seed(seed),
        ProtocolConfig::with_seed(seed),
        ClockMode::Lamport,
    );
    let checker = w.attach_checker();
    w.run_ms(20);
    w.net.partition(vec![vec![1, 2, 3], vec![4, 5]]);
    checker.retire(4);
    checker.retire(5);
    w.run_ms(2_000);
    for id in 1..=3u32 {
        assert_eq!(
            w.net
                .node(id)
                .unwrap()
                .engine()
                .membership(w.group())
                .unwrap()
                .len(),
            3
        );
    }
    // Heal: the excluded members hear the majority's Membership proposals
    // (or post-change Suspect state) naming a membership without them, and
    // leave the group rather than split-brain.
    w.net.heal();
    w.run_ms(3_000);
    for id in 4..=5u32 {
        let membership = w.net.node(id).unwrap().engine().membership(w.group());
        assert!(
            membership.is_none(),
            "P{id} must leave after learning of its exclusion, got {membership:?}"
        );
        let evs = w.net.node_mut(id).unwrap().take_events();
        assert!(
            evs.iter()
                .any(|(_, e)| matches!(e, ProtocolEvent::LeftGroup { .. })),
            "P{id} raised LeftGroup"
        );
    }
    // The majority is unaffected and still makes progress.
    w.send(1, 64);
    w.run_ms(200);
    checker.finish([1, 2, 3]);
    checker.assert_clean("healed minority exclusion");
    let res = w.collect();
    assert!(res.sequences[0].iter().any(|&(_, src, _)| src == 1));
}
