//! Integration: replicated CORBA invocations through the whole stack —
//! connection establishment, exactly-once execution, loss, crashes.

use ftmp::core::ProtocolConfig;
use ftmp::harness::worlds::OrbWorld;
use ftmp::net::{LossModel, SimConfig};
use ftmp::orb::servant::decode_i64_result;
use ftmp::orb::InvocationResult;

fn counter() -> Box<dyn ftmp::orb::Servant> {
    Box::new(ftmp::orb::Counter::default())
}

fn counter_value(w: &OrbWorld, id: u32) -> i64 {
    let snap = w
        .net
        .node(id)
        .unwrap()
        .orb()
        .servant(w.conn().server)
        .unwrap()
        .snapshot();
    decode_i64_result(&snap).unwrap()
}

#[test]
fn hundred_invocations_exactly_once() {
    let mut w = OrbWorld::new(
        2,
        3,
        SimConfig::with_seed(1),
        ProtocolConfig::with_seed(1),
        counter,
    );
    for _ in 0..100 {
        w.invoke_all("add", 1);
        w.run_ms(10);
    }
    w.run_ms(500);
    let (done, lats) = w.drain_completions();
    assert_eq!(done.len(), 100);
    assert_eq!(lats.len(), 100);
    for id in w.servers.clone() {
        assert_eq!(
            counter_value(&w, id),
            100,
            "server P{id} executed each op once"
        );
    }
    // 1 duplicate per server per invocation (2 clients).
    assert_eq!(w.server_suppressed(), 100 * 3);
}

#[test]
fn invocations_under_heavy_loss() {
    let mut w = OrbWorld::new(
        2,
        2,
        SimConfig::with_seed(2).loss(LossModel::Iid { p: 0.2 }),
        ProtocolConfig::with_seed(2),
        counter,
    );
    for _ in 0..30 {
        w.invoke_all("add", 2);
        w.run_ms(40);
    }
    w.run_ms(2_000);
    let (done, _) = w.drain_completions();
    assert_eq!(done.len(), 30);
    for id in w.servers.clone() {
        assert_eq!(counter_value(&w, id), 60);
    }
}

#[test]
fn results_identical_across_client_replicas() {
    let mut w = OrbWorld::new(
        3,
        3,
        SimConfig::with_seed(3),
        ProtocolConfig::with_seed(3),
        counter,
    );
    for _ in 0..10 {
        w.invoke_all("add", 5);
        w.run_ms(20);
    }
    w.run_ms(300);
    // Every client replica completed the same set with the same results.
    let mut views = Vec::new();
    for id in w.clients.clone() {
        let completions = w.net.node_mut(id).unwrap().take_completions();
        let view: Vec<(u64, Option<i64>)> = completions
            .iter()
            .map(|c| {
                let v = match &c.result {
                    InvocationResult::Ok(b) => decode_i64_result(b),
                    InvocationResult::Exception(_) | InvocationResult::Located { .. } => None,
                };
                (c.request_num.0, v)
            })
            .collect();
        views.push(view);
    }
    assert_eq!(views[0].len(), 10);
    assert_eq!(views[0], views[1]);
    assert_eq!(views[1], views[2]);
    assert_eq!(views[0].last().unwrap().1, Some(50));
}

#[test]
fn server_crash_mid_stream_preserves_exactly_once() {
    let mut w = OrbWorld::new(
        1,
        3,
        SimConfig::with_seed(4),
        ProtocolConfig::with_seed(4),
        counter,
    );
    for _ in 0..10 {
        w.invoke_all("add", 1);
        w.run_ms(15);
    }
    let victim = *w.servers.last().unwrap();
    w.net.crash(victim);
    // Keep invoking while the survivors reconfigure.
    for _ in 0..10 {
        w.invoke_all("add", 1);
        w.run_ms(60);
    }
    w.run_ms(2_000);
    let (done, _) = w.drain_completions();
    assert_eq!(
        done.len(),
        20,
        "all invocations completed despite the crash"
    );
    for id in w.servers.clone() {
        if id == victim {
            continue;
        }
        assert_eq!(counter_value(&w, id), 20, "survivor P{id} state");
    }
}

#[test]
fn client_replica_crash_is_transparent_to_the_service() {
    let mut w = OrbWorld::new(
        3,
        2,
        SimConfig::with_seed(5),
        ProtocolConfig::with_seed(5),
        counter,
    );
    for _ in 0..5 {
        w.invoke_all("add", 1);
        w.run_ms(20);
    }
    // One client replica dies; the duplicates from the others keep the
    // requests flowing.
    let victim = *w.clients.last().unwrap();
    w.net.crash(victim);
    w.run_ms(1_000);
    for _ in 0..5 {
        // Only the surviving clients invoke now.
        let conn = w.conn();
        for &id in &w.clients.clone() {
            if id == victim {
                continue;
            }
            w.net.with_node(id, move |node, now, out| {
                node.invoke(
                    now,
                    conn,
                    b"obj",
                    "add",
                    &ftmp::orb::servant::encode_i64_arg(1),
                    out,
                );
            });
        }
        w.run_ms(60);
    }
    w.run_ms(1_000);
    for id in w.servers.clone() {
        assert_eq!(
            counter_value(&w, id),
            10,
            "server P{id} applied all 10 adds once"
        );
    }
}
