//! Chaos integration: seeded random interleavings of sends, joins, leaves,
//! crashes and loss, asserting the core safety properties at the end of
//! every run — final live members agree on one total order, per-source
//! gap-free, and memberships converge.

use bytes::Bytes;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    RequestNum, SimProcessor,
};
use ftmp::net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(100);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

struct Chaos {
    net: SimNet<SimProcessor>,
    rng: SmallRng,
    members: BTreeSet<u32>,
    joined_ever: BTreeSet<u32>,
    crashed: BTreeSet<u32>,
    next_req: u64,
    next_id: u32,
    /// Membership operations are serialized, as the paper's §7.1 requires
    /// of the fault tolerance infrastructure ("must ensure that any
    /// necessary change to the membership of the processor group has been
    /// completed" before the next change).
    last_membership_op: ftmp::net::SimTime,
}

impl Chaos {
    fn new(seed: u64, loss: f64) -> Self {
        let sim = SimConfig::with_seed(seed).loss(if loss > 0.0 {
            LossModel::Iid { p: loss }
        } else {
            LossModel::None
        });
        let mut net = SimNet::new(sim);
        net.set_classifier(ftmp::core::wire::classify);
        let founders: Vec<ProcessorId> = (1..=4).map(ProcessorId).collect();
        for id in 1..=4u32 {
            let mut e = Processor::new(
                ProcessorId(id),
                ProtocolConfig::with_seed(seed),
                ClockMode::Lamport,
            );
            e.create_group(SimTime::ZERO, GROUP, ADDR, founders.clone());
            e.bind_connection(conn(), GROUP);
            net.add_node(id, SimProcessor::new(e));
            net.with_node(id, |n, now, out| n.pump_at(now, out));
        }
        Chaos {
            net,
            rng: SmallRng::seed_from_u64(seed ^ 0xC4405),
            members: (1..=4).collect(),
            joined_ever: (1..=4).collect(),
            crashed: BTreeSet::new(),
            next_req: 0,
            next_id: 5,
            last_membership_op: ftmp::net::SimTime::ZERO,
        }
    }

    fn membership_op_allowed(&self) -> bool {
        self.net
            .now()
            .saturating_since(self.last_membership_op)
            .as_millis()
            >= 400
    }

    fn alive(&self) -> Vec<u32> {
        self.members
            .iter()
            .copied()
            .filter(|id| !self.crashed.contains(id))
            .collect()
    }

    fn pick_alive(&mut self) -> Option<u32> {
        let alive = self.alive();
        if alive.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..alive.len());
        Some(alive[i])
    }

    fn step(&mut self) {
        let action = self.rng.gen_range(0..100u32);
        match action {
            // 70%: someone multicasts.
            0..=69 => {
                if let Some(id) = self.pick_alive() {
                    self.next_req += 1;
                    let req = RequestNum(self.next_req);
                    let len = self.rng.gen_range(8..256usize);
                    self.net.with_node(id, move |n, now, out| {
                        let _ = n.engine_mut().multicast_request(
                            now,
                            conn(),
                            req,
                            Bytes::from(vec![0u8; len]),
                        );
                        n.pump_at(now, out);
                    });
                }
            }
            // 12%: a new processor joins.
            70..=81 => {
                if self.alive().len() >= 2 && self.next_id < 12 && self.membership_op_allowed() {
                    self.last_membership_op = self.net.now();
                    let joiner = self.next_id;
                    self.next_id += 1;
                    let seed = self.rng.gen();
                    let mut e = Processor::new(
                        ProcessorId(joiner),
                        ProtocolConfig::with_seed(seed),
                        ClockMode::Lamport,
                    );
                    e.expect_join(GROUP, ADDR);
                    e.bind_connection(conn(), GROUP);
                    self.net.add_node(joiner, SimProcessor::new(e));
                    self.net
                        .with_node(joiner, |n, now, out| n.pump_at(now, out));
                    let sponsor = self.pick_alive().expect("checked");
                    self.net.with_node(sponsor, move |n, now, out| {
                        n.engine_mut()
                            .add_processor(now, GROUP, ProcessorId(joiner));
                        n.pump_at(now, out);
                    });
                    self.members.insert(joiner);
                    self.joined_ever.insert(joiner);
                }
            }
            // 10%: a voluntary leave.
            82..=91 => {
                let alive = self.alive();
                if alive.len() >= 3 && self.membership_op_allowed() {
                    self.last_membership_op = self.net.now();
                    let idx = self.rng.gen_range(0..alive.len());
                    let leaver = alive[idx];
                    let sponsor = alive[(idx + 1) % alive.len()];
                    self.net.with_node(sponsor, move |n, now, out| {
                        n.engine_mut()
                            .remove_processor(now, GROUP, ProcessorId(leaver));
                        n.pump_at(now, out);
                    });
                    self.members.remove(&leaver);
                }
            }
            // 8%: a crash — but keep a live majority of the current
            // membership so conviction stays possible.
            _ => {
                let alive = self.alive();
                if alive.len() >= 4 && self.membership_op_allowed() {
                    self.last_membership_op = self.net.now();
                    let idx = self.rng.gen_range(0..alive.len());
                    let victim = alive[idx];
                    self.net.crash(victim);
                    self.crashed.insert(victim);
                }
            }
        }
        let pause = self.rng.gen_range(1..12u64);
        self.net.run_for(SimDuration::from_millis(pause));
    }

    fn settle_and_check(&mut self, seed: u64) {
        self.net.run_for(SimDuration::from_secs(5));
        let live = self.alive();
        assert!(!live.is_empty(), "seed {seed}: everyone died?");
        // Memberships converge among final live processors that are still
        // group members.
        let mut memberships = Vec::new();
        let mut sequences = Vec::new();
        for &id in &live {
            let node = self.net.node_mut(id).unwrap();
            let m = node.engine().membership(GROUP);
            let seq: Vec<(u64, u32, u64)> = node
                .take_deliveries()
                .iter()
                .map(|(_, d)| (d.ts.0, d.source.0, d.seq.0))
                .collect();
            if let Some(m) = m {
                memberships.push((id, m));
                sequences.push((id, seq));
            }
        }
        assert!(
            !memberships.is_empty(),
            "seed {seed}: no live processor retains membership"
        );
        for w in memberships.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "seed {seed}: membership divergence between P{} and P{}",
                w[0].0, w[1].0
            );
        }
        // Delivery agreement: every pair agrees on the overlap — a later
        // joiner's sequence must be a suffix of an original member's.
        for i in 0..sequences.len() {
            for j in i + 1..sequences.len() {
                let (ia, a) = &sequences[i];
                let (ib, b) = &sequences[j];
                let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                assert_eq!(
                    &long[long.len() - short.len()..],
                    &short[..],
                    "seed {seed}: P{ia} and P{ib} disagree on the common suffix"
                );
            }
        }
        // Per-source gap-freedom on the longest view.
        if let Some((_, longest)) = sequences.iter().max_by_key(|(_, s)| s.len()) {
            let mut last: std::collections::BTreeMap<u32, u64> = Default::default();
            for &(_, src, s) in longest {
                let e = last.entry(src).or_insert(0);
                assert!(s > *e, "seed {seed}: source order violated for P{src}");
                *e = s;
            }
        }
    }
}

fn run_chaos(seed: u64, loss: f64, steps: usize) {
    let mut c = Chaos::new(seed, loss);
    for _ in 0..steps {
        c.step();
    }
    c.settle_and_check(seed);
}

#[test]
fn chaos_lossless() {
    for seed in 100..112u64 {
        run_chaos(seed, 0.0, 80);
    }
}

#[test]
fn chaos_with_loss() {
    for seed in 200..210u64 {
        run_chaos(seed, 0.05, 60);
    }
}

#[test]
fn chaos_heavy_loss_short() {
    for seed in 300..306u64 {
        run_chaos(seed, 0.15, 40);
    }
}

#[test]
fn chaos_long_run() {
    run_chaos(999, 0.08, 250);
}
