//! Chaos integration: seeded random interleavings of sends, joins, leaves,
//! crashes and loss. The `ftmp-check` oracle suite rides along on every
//! processor and asserts the paper properties online — reliability, source
//! / causal / total order, virtual synchrony, duplicate suppression and
//! reclamation safety; the bodies keep only the membership-convergence
//! checks the oracles cannot see.
//!
//! Seed counts scale with the `CHAOS_SEEDS` environment variable (seeds per
//! test); the defaults keep the suite fast for tier-1, CI's chaos job runs
//! wider in release mode.

use bytes::Bytes;
use ftmp::check::Checker;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    ProtocolEvent, RequestNum, SimProcessor, TimerPolicy,
};
use ftmp::net::{
    LinkDegrade, LinkSelector, LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(100);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

/// `base..base + CHAOS_SEEDS` (defaulting to `default_count` seeds).
fn seeds(base: u64, default_count: u64) -> std::ops::Range<u64> {
    let count = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default_count)
        .max(1);
    base..base + count
}

struct Chaos {
    net: SimNet<SimProcessor>,
    checker: Checker,
    rng: SmallRng,
    members: BTreeSet<u32>,
    joined_ever: BTreeSet<u32>,
    crashed: BTreeSet<u32>,
    next_req: u64,
    next_id: u32,
    /// Membership operations are serialized, as the paper's §7.1 requires
    /// of the fault tolerance infrastructure ("must ensure that any
    /// necessary change to the membership of the processor group has been
    /// completed" before the next change).
    last_membership_op: ftmp::net::SimTime,
}

impl Chaos {
    fn new(seed: u64, loss: f64) -> Self {
        let sim = SimConfig::with_seed(seed).loss(if loss > 0.0 {
            LossModel::Iid { p: loss }
        } else {
            LossModel::None
        });
        Chaos::with(seed, sim, ProtocolConfig::with_seed(seed))
    }

    fn with(seed: u64, sim: SimConfig, proto: ProtocolConfig) -> Self {
        let mut net = SimNet::new(sim);
        net.set_classifier(ftmp::core::wire::classify);
        let founders: Vec<ProcessorId> = (1..=4).map(ProcessorId).collect();
        let checker = Checker::new(GROUP, &founders);
        for id in 1..=4u32 {
            let mut e = Processor::new(ProcessorId(id), proto.clone(), ClockMode::Lamport);
            e.create_group(SimTime::ZERO, GROUP, ADDR, founders.clone());
            e.bind_connection(conn(), GROUP);
            net.add_node(id, SimProcessor::new(e));
            checker.attach(&mut net, id);
            net.with_node(id, |n, now, out| n.pump_at(now, out));
        }
        Chaos {
            net,
            checker,
            rng: SmallRng::seed_from_u64(seed ^ 0xC4405),
            members: (1..=4).collect(),
            joined_ever: (1..=4).collect(),
            crashed: BTreeSet::new(),
            next_req: 0,
            next_id: 5,
            last_membership_op: ftmp::net::SimTime::ZERO,
        }
    }

    fn membership_op_allowed(&self) -> bool {
        self.net
            .now()
            .saturating_since(self.last_membership_op)
            .as_millis()
            >= 400
    }

    fn alive(&self) -> Vec<u32> {
        self.members
            .iter()
            .copied()
            .filter(|id| !self.crashed.contains(id))
            .collect()
    }

    fn pick_alive(&mut self) -> Option<u32> {
        let alive = self.alive();
        if alive.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..alive.len());
        Some(alive[i])
    }

    fn send_random(&mut self) {
        if let Some(id) = self.pick_alive() {
            self.next_req += 1;
            let req = RequestNum(self.next_req);
            let len = self.rng.gen_range(8..256usize);
            self.net.with_node(id, move |n, now, out| {
                let _ =
                    n.engine_mut()
                        .multicast_request(now, conn(), req, Bytes::from(vec![0u8; len]));
                n.pump_at(now, out);
            });
        }
    }

    /// A send-only step: no membership churn, used by the latency-spike
    /// phases where any membership change would be a false conviction.
    fn step_send_only(&mut self) {
        self.send_random();
        let pause = self.rng.gen_range(1..12u64);
        self.net.run_for(SimDuration::from_millis(pause));
    }

    fn step(&mut self) {
        let action = self.rng.gen_range(0..100u32);
        match action {
            // 70%: someone multicasts.
            0..=69 => {
                self.send_random();
            }
            // 12%: a new processor joins.
            70..=81 => {
                if self.alive().len() >= 2 && self.next_id < 12 && self.membership_op_allowed() {
                    self.last_membership_op = self.net.now();
                    let joiner = self.next_id;
                    self.next_id += 1;
                    let seed = self.rng.gen();
                    let mut e = Processor::new(
                        ProcessorId(joiner),
                        ProtocolConfig::with_seed(seed),
                        ClockMode::Lamport,
                    );
                    e.expect_join(GROUP, ADDR);
                    e.bind_connection(conn(), GROUP);
                    self.net.add_node(joiner, SimProcessor::new(e));
                    self.checker.attach(&mut self.net, joiner);
                    self.net
                        .with_node(joiner, |n, now, out| n.pump_at(now, out));
                    let sponsor = self.pick_alive().expect("checked");
                    self.net.with_node(sponsor, move |n, now, out| {
                        n.engine_mut()
                            .add_processor(now, GROUP, ProcessorId(joiner));
                        n.pump_at(now, out);
                    });
                    self.members.insert(joiner);
                    self.joined_ever.insert(joiner);
                }
            }
            // 10%: a voluntary leave.
            82..=91 => {
                let alive = self.alive();
                if alive.len() >= 3 && self.membership_op_allowed() {
                    self.last_membership_op = self.net.now();
                    let idx = self.rng.gen_range(0..alive.len());
                    let leaver = alive[idx];
                    let sponsor = alive[(idx + 1) % alive.len()];
                    self.net.with_node(sponsor, move |n, now, out| {
                        n.engine_mut()
                            .remove_processor(now, GROUP, ProcessorId(leaver));
                        n.pump_at(now, out);
                    });
                    self.members.remove(&leaver);
                    self.checker.retire(leaver);
                }
            }
            // 8%: a crash — but keep a live majority of the current
            // membership so conviction stays possible.
            _ => {
                let alive = self.alive();
                if alive.len() >= 4 && self.membership_op_allowed() {
                    self.last_membership_op = self.net.now();
                    let idx = self.rng.gen_range(0..alive.len());
                    let victim = alive[idx];
                    self.net.crash(victim);
                    self.crashed.insert(victim);
                    self.checker.retire(victim);
                }
            }
        }
        let pause = self.rng.gen_range(1..12u64);
        self.net.run_for(SimDuration::from_millis(pause));
    }

    fn settle_and_check(&mut self, seed: u64) {
        self.net.run_for(SimDuration::from_secs(5));
        let live = self.alive();
        assert!(!live.is_empty(), "seed {seed}: everyone died?");
        // Memberships converge among final live processors that are still
        // group members — state the oracles do not track.
        let mut memberships = Vec::new();
        for &id in &live {
            if let Some(m) = self.net.node(id).unwrap().engine().membership(GROUP) {
                memberships.push((id, m));
            }
        }
        assert!(
            !memberships.is_empty(),
            "seed {seed}: no live processor retains membership"
        );
        for w in memberships.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "seed {seed}: membership divergence between P{} and P{}",
                w[0].0, w[1].0
            );
        }
        // Delivery agreement, joiner suffixes, per-source gap-freedom and
        // the rest of the paper properties: the oracle suite checked them
        // online; finish() settles the end-of-run convergence obligations
        // for the processors still holding membership.
        let members: Vec<u32> = memberships.iter().map(|&(id, _)| id).collect();
        self.checker.finish(members);
        self.checker.assert_clean(&format!("chaos seed {seed}"));
        assert!(
            self.checker.delivered() > 0,
            "seed {seed}: the oracles saw no deliveries — observer wiring broken"
        );
    }
}

fn run_chaos(seed: u64, loss: f64, steps: usize) {
    let mut c = Chaos::new(seed, loss);
    for _ in 0..steps {
        c.step();
    }
    c.settle_and_check(seed);
}

/// Latency-spike phases under adaptive timers: three degrade windows rotate
/// the afflicted processor's outbound links (latency ×40 with amplified
/// jitter, plus burst-like extra loss) while traffic flows. Nobody crashes,
/// so any `FaultReport` is a false conviction — adaptive timers must ride
/// every spike out.
fn run_latency_spike_chaos(seed: u64) {
    let mut sim = SimConfig::with_seed(seed);
    for (i, victim) in (1u32..=3).enumerate() {
        let start = 500_000 + i as u64 * 1_000_000;
        sim = sim.degrade(LinkDegrade {
            from: SimTime(start),
            until: SimTime(start + 600_000),
            links: LinkSelector::From(vec![victim]),
            latency_factor: 40.0,
            extra_loss: 0.35,
        });
    }
    let proto = ProtocolConfig::with_seed(seed)
        .fail_timeout_of(SimDuration::from_millis(30))
        .timer_policy(TimerPolicy::Adaptive);
    let mut c = Chaos::with(seed, sim, proto);
    // ~2.5 s of traffic (pauses average ~6 ms), spanning all three spikes.
    for _ in 0..400 {
        c.step_send_only();
    }
    c.settle_and_check(seed);
    for id in 1..=4u32 {
        if let Some(node) = c.net.node_mut(id) {
            for (at, e) in node.take_events() {
                assert!(
                    !matches!(e, ProtocolEvent::FaultReport { .. }),
                    "seed {seed}: false conviction at {}us under adaptive timers: {e:?}",
                    at.as_micros()
                );
            }
        }
    }
}

#[test]
fn chaos_lossless() {
    for seed in seeds(100, 12) {
        run_chaos(seed, 0.0, 80);
    }
}

#[test]
fn chaos_with_loss() {
    for seed in seeds(200, 10) {
        run_chaos(seed, 0.05, 60);
    }
}

#[test]
fn chaos_heavy_loss_short() {
    for seed in seeds(300, 6) {
        run_chaos(seed, 0.15, 40);
    }
}

#[test]
fn chaos_latency_spikes_no_false_convictions() {
    for seed in seeds(400, 6) {
        run_latency_spike_chaos(seed);
    }
}

#[test]
fn chaos_long_run() {
    run_chaos(999, 0.08, 250);
}
