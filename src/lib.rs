//! FTMP — a reproduction of *"A Group Communication Protocol for CORBA"*
//! (Moser, Melliar-Smith, Koch, Berket; ICPP 1999).
//!
//! This facade crate re-exports the workspace members so examples, tests and
//! downstream users need a single dependency:
//!
//! * [`cdr`] — CORBA CDR marshalling,
//! * [`giop`] — GIOP 1.0 message set,
//! * [`net`] — deterministic multicast network simulator + live transport,
//! * [`core`] — the FTMP stack (RMP / ROMP / PGMP),
//! * [`orb`] — miniature fault-tolerant ORB over FTMP,
//! * [`baselines`] — sequencer / token-ring / unicast baselines,
//! * [`harness`] — experiment workloads, sweeps and metrics,
//! * [`check`] — online conformance oracles + schedule-sweep driver,
//! * [`store`] — durable delivered-message log with crash-restart recovery,
//! * [`runtime`] — real-socket runtime (UDP multicast / TCP mesh) driving
//!   the same sans-io engine over OS sockets and wall-clock time.
//!
//! # Example
//!
//! Three processors, one lossy simulated network, one agreed total order:
//!
//! ```
//! use bytes::Bytes;
//! use ftmp::core::{
//!     ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId,
//!     ProtocolConfig, RequestNum, SimProcessor,
//! };
//! use ftmp::net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime};
//!
//! let conn = ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2));
//! let members: Vec<ProcessorId> = (1..=3).map(ProcessorId).collect();
//! let mut net = SimNet::new(SimConfig::with_seed(42).loss(LossModel::Iid { p: 0.05 }));
//! for id in 1..=3u32 {
//!     let mut p = Processor::new(ProcessorId(id), ProtocolConfig::default(), ClockMode::Lamport);
//!     p.create_group(SimTime::ZERO, GroupId(1), McastAddr(1), members.clone());
//!     p.bind_connection(conn, GroupId(1));
//!     net.add_node(id, SimProcessor::new(p));
//!     net.with_node(id, |n, now, out| n.pump_at(now, out));
//! }
//! net.with_node(1, |n, now, out| {
//!     n.engine_mut()
//!         .multicast_request(now, conn, RequestNum(1), Bytes::from_static(b"hello"))
//!         .unwrap();
//!     n.pump_at(now, out);
//! });
//! net.run_for(SimDuration::from_millis(100));
//! let delivered = net.node_mut(2).unwrap().take_deliveries();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].1.giop.as_ref(), b"hello");
//! ```

pub use ftmp_baselines as baselines;
pub use ftmp_cdr as cdr;
pub use ftmp_check as check;
pub use ftmp_core as core;
pub use ftmp_giop as giop;
pub use ftmp_harness as harness;
pub use ftmp_net as net;
pub use ftmp_orb as orb;
pub use ftmp_runtime as runtime;
pub use ftmp_store as store;
