# Developer entry points. `just` runs `check`; `just ci` is what the
# GitHub Actions workflow runs.

default: check

# Fast compile check of the whole workspace.
check:
    cargo check --workspace --all-targets

# Format check (no rewrite).
fmt:
    cargo fmt --all --check

# Lints, warnings denied.
clippy:
    cargo clippy --all-targets -- -D warnings

# Tier-1 tests: the root integration suites.
test:
    cargo test -q

# Everything, including per-crate unit tests.
test-all:
    cargo test --workspace -q

# The full CI gate.
ci: fmt clippy test

# Wide chaos sweep, release mode (CHAOS_SEEDS seeds per test).
chaos:
    CHAOS_SEEDS=32 cargo test --release --test chaos

# Conformance sweep: the oracle suite over the full fault matrix, release
# mode (CONFORMANCE_SEEDS seeds per scenario); writes CONFORMANCE_verdicts.json.
conformance:
    CONFORMANCE_SEEDS=16 cargo test --release --test conformance

# Regenerate every experiment table (see EXPERIMENTS.md).
experiments:
    cargo run --release -p ftmp-harness --bin ftmp-exp

# Telemetry snapshot: run E14 and write results/e14_metrics.json plus the
# per-table JSONs (see DESIGN.md §10).
metrics:
    FTMP_METRICS_DIR=results cargo run --release -p ftmp-harness --bin ftmp-exp -- --exp e14 --json results

# Criterion microbenches, then the packing snapshot (BENCH_pack.json).
bench:
    cargo bench -p ftmp-bench
    cargo run --release -p ftmp-bench --bin pack_snapshot

# Engine-saturation snapshot: sustained throughput and p99 e2e latency at
# 3/5/7 replicas plus the 10k-connection soak (BENCH_e2e.json).
bench-e2e:
    cargo run --release -p ftmp-bench --bin e2e_snapshot

# Crash→restart→rejoin gate (DESIGN.md §12): the durable-log integration
# tests, the CrashRestart sweep cell, then the E16 recovery snapshot
# (results/e16.json + results/e16_metrics.json).
recover:
    cargo test --release --test durable_recovery
    cargo test --release -p ftmp-check crash_restart
    FTMP_METRICS_DIR=results cargo run --release -p ftmp-bench --bin e16_recovery

# Dissemination-overlay gate (DESIGN.md §13): the 64/128-member tree-mode
# sweep cell under all seven oracles, then the E17 control-cost snapshot
# flat vs tree at 16/64/128/256 members (results/e17.json).
e17:
    cargo test --release -p ftmp-check large_group
    cargo run --release -p ftmp-bench --bin e17_overlay

# Coverage-guided exploration gate (DESIGN.md §15): the E19 comparison —
# fixed matrix vs feedback-guided explorer at equal budget — plus any
# oracle violations found, minimized to replayable genomes
# (results/e19.json + results/e19_corpus.json). Fails unless the
# explorer strictly beats the matrix and the campaign is violation-free.
explore:
    cargo run --release -p ftmp-harness --bin ftmp-explore

# Real-socket cluster gate (DESIGN.md §14): the runtime's socket tests,
# then the E18 multi-process cluster — 3 founders + a live join + a
# kill -9/durable-log restart over UDP multicast (auto TCP fallback),
# traces replayed through all seven oracles (results/e18.json).
cluster:
    FTMP_SOCKET_TESTS=1 cargo test --release -p ftmp-runtime
    cargo run --release -p ftmp-harness --bin ftmp-cluster
