//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Randomly permute a generated `Vec`.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S>(S);

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.0.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i + 1);
            v.swap(i, j);
        }
        v
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

/// One boxed alternative inside a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

impl<V> Union<V> {
    /// Build from pre-boxed arms (at least one).
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }

    /// Box one strategy as an arm.
    pub fn arm<S>(s: S) -> UnionArm<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        (self.arms[i])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $idx:tt),+ ))+) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn map_and_shuffle() {
        let mut rng = rng_for("map_and_shuffle");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
        let shuffled = crate::sample::subsequence((1u64..=20).collect::<Vec<_>>(), 20)
            .prop_shuffle()
            .generate(&mut rng);
        let mut sorted = shuffled.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1u64..=20).collect::<Vec<_>>());
    }

    #[test]
    fn union_hits_all_arms() {
        let mut rng = rng_for("union_hits_all_arms");
        let u = Union::new(vec![
            Union::arm(Just(1u8)),
            Union::arm(Just(2u8)),
            Union::arm(Just(3u8)),
        ]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
