//! `&str` regex strategies (character-class subset).
//!
//! A pattern is a sequence of atoms, each a character class `[...]` or a
//! literal character, optionally followed by `{n}` or `{m,n}`. Classes
//! support literals, ranges (`a-z`), leading `^` negation, `\u{..}`
//! escapes and `&&[...]` intersection — the subset this workspace's test
//! suites actually use (e.g. `"[a-z]{1,12}"`, `"[ -~&&[^\u{0}]]{0,40}"`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct CharClass {
    negated: bool,
    ranges: Vec<(char, char)>,
    /// `&&[...]` intersection, applied as an extra membership predicate.
    and: Option<Box<CharClass>>,
}

impl CharClass {
    fn matches(&self, c: char) -> bool {
        let in_ranges = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        let base = in_ranges != self.negated;
        base && self.and.as_ref().map_or(true, |a| a.matches(c))
    }

    fn sample(&self, rng: &mut TestRng) -> char {
        if !self.negated && !self.ranges.is_empty() {
            // Pick from the union of ranges; reject on the intersection.
            let total: u64 = self
                .ranges
                .iter()
                .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                .sum();
            for _ in 0..200 {
                let mut ix = rng.next_u64() % total;
                for &(lo, hi) in &self.ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if ix < span {
                        if let Some(c) = char::from_u32(lo as u32 + ix as u32) {
                            if self.matches(c) {
                                return c;
                            }
                        }
                        break;
                    }
                    ix -= span;
                }
            }
        } else {
            // Negated (or empty) class: draw mostly printable ASCII with a
            // sprinkling of wider scalars, rejecting non-members.
            for _ in 0..500 {
                let c = match rng.below(20) {
                    0..=15 => char::from(0x20 + rng.below(0x5F) as u8),
                    16..=17 => char::from(0x01 + rng.below(0x1F) as u8),
                    _ => char::from_u32(0xA0 + rng.below(0x1000) as u32).unwrap_or('¤'),
                };
                if self.matches(c) {
                    return c;
                }
            }
        }
        // Deterministic fallback: first printable member.
        (0x20u32..0xFFFF)
            .filter_map(char::from_u32)
            .find(|&c| self.matches(c))
            .expect("character class matches no sampleable character")
    }
}

#[derive(Debug, Clone)]
struct Atom {
    class: CharClass,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let class = match chars[i] {
            '[' => parse_class(&chars, &mut i),
            '\\' => {
                let c = parse_escape(&chars, &mut i);
                CharClass {
                    negated: false,
                    ranges: vec![(c, c)],
                    and: None,
                }
            }
            c => {
                i += 1;
                CharClass {
                    negated: false,
                    ranges: vec![(c, c)],
                    and: None,
                }
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            parse_repeat(&chars, &mut i)
        } else {
            (1, 1)
        };
        atoms.push(Atom { class, min, max });
    }
    atoms
}

/// Parse `[...]` starting at `chars[*i] == '['`; leaves `*i` past `]`.
fn parse_class(chars: &[char], i: &mut usize) -> CharClass {
    assert_eq!(chars[*i], '[', "expected '['");
    *i += 1;
    let negated = chars.get(*i) == Some(&'^');
    if negated {
        *i += 1;
    }
    let mut ranges = Vec::new();
    let mut and = None;
    while *i < chars.len() && chars[*i] != ']' {
        if chars[*i] == '&' && chars.get(*i + 1) == Some(&'&') {
            *i += 2;
            and = Some(Box::new(parse_class(chars, i)));
            continue;
        }
        let lo = if chars[*i] == '\\' {
            parse_escape(chars, i)
        } else {
            let c = chars[*i];
            *i += 1;
            c
        };
        // A `-` between two members forms a range (not at class end).
        if chars.get(*i) == Some(&'-') && chars.get(*i + 1).is_some_and(|&c| c != ']') {
            *i += 1;
            let hi = if chars[*i] == '\\' {
                parse_escape(chars, i)
            } else {
                let c = chars[*i];
                *i += 1;
                c
            };
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    assert_eq!(chars.get(*i), Some(&']'), "unterminated character class");
    *i += 1;
    CharClass {
        negated,
        ranges,
        and,
    }
}

/// Parse an escape starting at `chars[*i] == '\\'`; leaves `*i` past it.
fn parse_escape(chars: &[char], i: &mut usize) -> char {
    assert_eq!(chars[*i], '\\');
    *i += 1;
    let c = chars[*i];
    *i += 1;
    match c {
        'u' => {
            assert_eq!(chars[*i], '{', "expected \\u{{..}}");
            *i += 1;
            let mut v: u32 = 0;
            while chars[*i] != '}' {
                v = v * 16 + chars[*i].to_digit(16).expect("hex digit in \\u{..}");
                *i += 1;
            }
            *i += 1;
            char::from_u32(v).expect("valid scalar in \\u{..}")
        }
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

/// Parse `{n}` or `{m,n}` starting at `chars[*i] == '{'`.
fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
    assert_eq!(chars[*i], '{');
    *i += 1;
    let mut first = 0usize;
    while chars[*i].is_ascii_digit() {
        first = first * 10 + chars[*i].to_digit(10).unwrap() as usize;
        *i += 1;
    }
    let second = if chars[*i] == ',' {
        *i += 1;
        let mut n = 0usize;
        while chars[*i].is_ascii_digit() {
            n = n * 10 + chars[*i].to_digit(10).unwrap() as usize;
            *i += 1;
        }
        n
    } else {
        first
    };
    assert_eq!(chars[*i], '}', "unterminated repetition");
    *i += 1;
    (first, second)
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.between(atom.min, atom.max);
            for _ in 0..n {
                out.push(atom.class.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn simple_class_with_repeat() {
        let mut rng = rng_for("simple_class_with_repeat");
        for _ in 0..100 {
            let s = "[a-z]{1,12}".generate(&mut rng);
            assert!((1..=12).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_with_intersection() {
        let mut rng = rng_for("printable_with_intersection");
        for _ in 0..100 {
            let s = "[ -~&&[^\u{0}]]{0,40}".generate(&mut rng);
            assert!(s.chars().count() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn leading_literal_class_then_repeat() {
        let mut rng = rng_for("leading_literal_class_then_repeat");
        for _ in 0..100 {
            let s = "[a-zA-Z_][a-zA-Z0-9_]{0,24}".generate(&mut rng);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            assert!(s.chars().count() <= 25);
        }
    }

    #[test]
    fn negated_class_excludes_nul() {
        let mut rng = rng_for("negated_class_excludes_nul");
        for _ in 0..100 {
            let s = "[^\u{0}]{0,64}".generate(&mut rng);
            assert!(s.chars().count() <= 64);
            assert!(!s.contains('\u{0}'));
        }
    }
}
