//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Draw one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy for any [`Arbitrary`] type; see [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.f64() as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII, occasionally wider BMP scalars.
        if rng.below(10) < 8 {
            char::from(0x20 + rng.below(0x5F) as u8)
        } else {
            char::from_u32(0xA0 + rng.below(0x2000) as u32).unwrap_or('¤')
        }
    }
}

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}
