//! Deterministic case runner: a SplitMix64 generator seeded from the test
//! name, so every run of a property test sees the same case sequence.

/// Number of random cases each `proptest!` body runs.
pub const CASES: usize = 64;

/// The generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Build from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform draw from `lo..=hi`.
    pub fn between(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "between({lo}, {hi})");
        lo + self.below(hi - lo + 1)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seed a [`TestRng`] deterministically from a test's name.
pub fn rng_for(name: &str) -> TestRng {
    // FNV-1a over the name keeps runs reproducible without global state.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}
