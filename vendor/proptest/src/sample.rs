//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy choosing an order-preserving subsequence; see [`subsequence`].
pub struct Subsequence<T> {
    values: Vec<T>,
    amount: usize,
}

/// Pick `amount` distinct elements of `values`, preserving their original
/// relative order.
pub fn subsequence<T: Clone>(values: Vec<T>, amount: usize) -> Subsequence<T> {
    assert!(
        amount <= values.len(),
        "subsequence amount {} exceeds {} values",
        amount,
        values.len()
    );
    Subsequence { values, amount }
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        // Floyd's algorithm for a uniform k-of-n index sample.
        let n = self.values.len();
        let k = self.amount;
        let mut chosen = vec![false; n];
        for j in (n - k)..n {
            let t = rng.below(j + 1);
            if chosen[t] {
                chosen[j] = true;
            } else {
                chosen[t] = true;
            }
        }
        self.values
            .iter()
            .zip(&chosen)
            .filter(|(_, &c)| c)
            .map(|(v, _)| v.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn subsequence_preserves_order_and_size() {
        let mut rng = rng_for("subsequence_preserves_order_and_size");
        let s = subsequence((1u32..=10).collect::<Vec<_>>(), 4);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert_eq!(v.len(), 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn full_subsequence_is_identity() {
        let mut rng = rng_for("full_subsequence_is_identity");
        let all: Vec<u64> = (1..=20).collect();
        let s = subsequence(all.clone(), 20);
        assert_eq!(s.generate(&mut rng), all);
    }
}
