//! Offline vendored subset of the `proptest` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this implementation. It keeps the API surface the test
//! suites use — the [`proptest!`] macro, [`prop_assert!`]/
//! [`prop_assert_eq!`], `any::<T>()`, range/tuple/`&str`-regex strategies,
//! `prop_map`/`prop_shuffle`, [`prop_oneof!`], `collection::{vec,
//! btree_set}` and `sample::subsequence` — but replaces the engine with a
//! simple deterministic random-case runner: each property runs
//! [`test_runner::CASES`] cases seeded from the test's module path, with
//! no shrinking. Failures therefore reproduce across runs.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Define property tests. Each function body runs [`test_runner::CASES`]
/// times with freshly generated inputs.
///
/// Supported argument forms: `pattern in strategy` and `name: Type`
/// (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block)+) => {
        $( $crate::__proptest_one!{ $(#[$attr])* fn $name ($($args)*) $body } )+
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ($(#[$attr:meta])* fn $name:ident($($args:tt)*) $body:block) => {
        $(#[$attr])*
        fn $name() {
            let mut __rng = $crate::test_runner::rng_for(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..$crate::test_runner::CASES {
                let _ = __case;
                $crate::__proptest_bind!(__rng, ($($args)*) $body);
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, () $body:block) => { $body };
    ($rng:ident, ($p:pat in $s:expr) $body:block) => {{
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $body
    }};
    ($rng:ident, ($p:pat in $s:expr, $($rest:tt)*) $body:block) => {{
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*) $body)
    }};
    ($rng:ident, ($i:ident : $t:ty) $body:block) => {{
        let $i: $t =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $body
    }};
    ($rng:ident, ($i:ident : $t:ty, $($rest:tt)*) $body:block) => {{
        let $i: $t =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$t>(), &mut $rng);
        $crate::__proptest_bind!($rng, ($($rest)*) $body)
    }};
}

/// Assert a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert two expressions are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert two expressions differ for the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Union::arm($arm) ),+
        ])
    };
}
