//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A target size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.between(self.lo, self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec<T>` strategy; see [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generate a `Vec` whose length falls in `size`, elements from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `BTreeSet<T>` strategy; see [`btree_set`].
pub struct BTreeSetStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Generate a `BTreeSet` aiming for a size in `size`. Duplicate draws are
/// retried a bounded number of times, so a set may come out smaller than
/// the target when the element domain is narrow.
pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        elem,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut tries = 0;
        while set.len() < target && tries < target * 10 + 16 {
            set.insert(self.elem.generate(rng));
            tries += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = rng_for("vec_respects_size_range");
        let s = vec(0u8..255, 3..7);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_unique_and_bounded() {
        let mut rng = rng_for("btree_set_unique_and_bounded");
        let s = btree_set(1u64..40, 0..25);
        for _ in 0..50 {
            let set = s.generate(&mut rng);
            assert!(set.len() < 40);
            assert!(set.iter().all(|v| (1..40).contains(v)));
        }
    }
}
