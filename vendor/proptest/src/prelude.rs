//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::arbitrary::{any, Arbitrary};
pub use crate::strategy::{Just, Strategy, Union};
pub use crate::test_runner::TestRng;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
