//! Offline vendored subset of the `crossbeam` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `crossbeam` to this implementation. Only [`channel`] is provided — an
//! unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar` with the
//! same disconnect semantics the live transport relies on: once every
//! `Sender` is dropped, receivers drain the queue and then observe
//! `Disconnected`, which ends `Receiver::iter` loops.

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: inner.clone(),
            },
            Receiver { inner },
        )
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clonable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }
    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }
    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }
    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "channel is empty and disconnected")
                }
            }
        }
    }
    impl<T: fmt::Debug> std::error::Error for SendError<T> {}
    impl std::error::Error for RecvError {}
    impl std::error::Error for TryRecvError {}
    impl std::error::Error for RecvTimeoutError {}

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(msg);
            drop(q);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::Acquire) == 0
        }

        /// Block until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self
                    .inner
                    .ready
                    .wait(q)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .inner
                    .ready
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.disconnected() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator; ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator over received messages; see [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;
        use std::time::Duration;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_ends_iter() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || {
                for i in 0..5 {
                    tx.send(i).unwrap();
                }
                // tx dropped here.
            });
            let got: Vec<i32> = rx.iter().collect();
            t.join().unwrap();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }

        #[test]
        fn timeout_fires() {
            let (_tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }

        #[test]
        fn cross_thread_wakeup() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(99u8).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(99));
            t.join().unwrap();
        }
    }
}
