//! Offline vendored subset of the `criterion` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` to this minimal timing harness. It keeps the macro and
//! builder surface the bench suite uses (`criterion_group!`/
//! `criterion_main!`, benchmark groups, [`BenchmarkId`], [`Throughput`],
//! `Bencher::iter`) and reports median ns/iteration over a handful of
//! short samples — adequate for relative comparisons, without the real
//! crate's statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Benchmark registry and runner.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: self.samples,
            throughput: None,
            _parent: self,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.samples, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declare work-per-iteration so the report can show rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.samples, self.throughput, f);
        self
    }

    /// Run a benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.samples, self.throughput, |b| f(b, input));
        self
    }

    /// Finish the group (report separator).
    pub fn finish(self) {}
}

/// A benchmark name with an optional parameter component.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (uses the function name as the group label).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Accepted benchmark identifiers (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render to the display label.
    fn into_benchmark_id(self) -> String;
}
impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}
impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units of work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(label: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibrate the iteration count so one sample lasts ~2 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 24 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!(
            "  {:>10.1} MiB/s",
            n as f64 / median * 1e9 / (1024.0 * 1024.0)
        ),
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / median * 1e9)
        }
        None => String::new(),
    };
    println!("{label:<48} {median:>12.1} ns/iter{rate}");
}

/// Group benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| x.wrapping_mul(99))
        });
        g.finish();
    }
}
