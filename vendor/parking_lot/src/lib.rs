//! Offline vendored subset of the `parking_lot` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `parking_lot` to thin wrappers over `std::sync` primitives exposing the
//! `parking_lot` calling convention: `lock()`/`read()`/`write()` return
//! guards directly (poisoning is swallowed) instead of `Result`s.

use std::fmt;

/// Mutual exclusion lock; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
