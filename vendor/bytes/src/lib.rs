//! Offline vendored subset of the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace patches `bytes` to this implementation. It provides the pieces
//! the FTMP stack uses — [`Bytes`] (a cheaply clonable, sliceable,
//! reference-counted byte buffer), [`BytesMut`] and the [`BufMut`] write
//! trait — with the same observable semantics: `Bytes::clone` and
//! `Bytes::slice` share the underlying allocation rather than copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable slice of memory.
///
/// Clones and sub-slices share one reference-counted allocation; no byte
/// copying happens after construction.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty `Bytes`.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// Wrap a static slice without allocating.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(bytes),
            off: 0,
            len: bytes.len(),
        }
    }

    /// Copy a slice into a new reference-counted buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// View as a plain byte slice.
    pub fn as_ref(&self) -> &[u8] {
        &self.backing()[self.off..self.off + self.len]
    }

    /// Return a sub-slice sharing this buffer's allocation (no copy).
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes::from(b.into_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for e in std::ascii::escape_default(b) {
                write!(f, "{}", e as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional)
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src)
    }

    /// Resize, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value)
    }

    /// Clear contents, keeping capacity.
    pub fn clear(&mut self) {
        self.buf.clear()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}
impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}
impl From<Vec<u8>> for BytesMut {
    fn from(buf: Vec<u8>) -> Self {
        BytesMut { buf }
    }
}
impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}
impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

/// Write-side trait: append integers (big-endian, matching the real `bytes`
/// crate's `put_uN` defaults) and slices to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b.as_ref().as_ptr(), c.as_ref().as_ptr());
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.as_ref().as_ptr(), unsafe { b.as_ref().as_ptr().add(1) });
    }

    #[test]
    fn bytes_mut_round_trip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(0xAB);
        m.put_u32(0x01020304);
        m.put_u64(0x05060708090A0B0C);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            b.as_ref(),
            &[0xAB, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0x0A, 0x0B, 0x0C, b'x', b'y']
        );
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, Bytes::from(vec![b'a', b'b', b'c']));
        assert_eq!(b, *b"abc");
        assert_eq!(b, vec![b'a', b'b', b'c']);
    }
}
