//! Offline vendored subset of the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this implementation. It provides the pieces the FTMP stack
//! uses: [`Rng::gen`], [`Rng::gen_range`] (half-open and inclusive integer
//! ranges plus `f64`), [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::SmallRng`] (a SplitMix64 generator). Streams are
//! deterministic per seed, which is all the simulator relies on; they do
//! not bit-match the real crate's output.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        // 53 random bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

/// `rand::seq` shims (shuffling).
pub mod seq {
    use super::RngCore;

    /// Shuffle helpers for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Re-exports matching `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = SmallRng::seed_from_u64(43);
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u32..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
