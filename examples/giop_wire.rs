//! The Fig. 2 encapsulation, byte by byte: a GIOP Request marshalled with
//! CDR, wrapped in an FTMP Regular message.
//!
//! ```text
//! cargo run --example giop_wire
//! ```

use bytes::Bytes;
use ftmp::cdr::ByteOrder;
use ftmp::core::wire::{FtmpBody, FtmpMessage, FTMP_HEADER_LEN};
use ftmp::core::{
    ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum, SeqNum, Timestamp,
};
use ftmp::giop::{GiopMessage, RequestHeader, GIOP_HEADER_LEN};

fn hexdump(bytes: &[u8], highlight: &[(usize, usize, &str)]) {
    for (off, chunk) in bytes.chunks(16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        let ascii: String = chunk
            .iter()
            .map(|&b| {
                if (0x20..0x7f).contains(&b) {
                    b as char
                } else {
                    '.'
                }
            })
            .collect();
        let base = off * 16;
        let label = highlight
            .iter()
            .find(|(s, e, _)| base >= *s && base < *e)
            .map(|(_, _, l)| *l)
            .unwrap_or("");
        println!("{base:5}  {:<47}  |{ascii:<16}|  {label}", hex.join(" "));
    }
}

fn main() {
    // The GIOP Request: deposit(42) on bank/account/7.
    let mut args = ftmp::cdr::CdrWriter::new(ByteOrder::Big);
    args.write_i64(42);
    let giop = GiopMessage::Request {
        header: RequestHeader {
            service_context: vec![],
            request_id: 1,
            response_expected: true,
            object_key: b"bank/account/7".to_vec(),
            operation: "deposit".into(),
            requesting_principal: vec![],
        },
        body: args.into_bytes(),
    }
    .encode(ByteOrder::Big);

    // Wrapped in an FTMP Regular message (Fig. 2).
    let conn = ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2));
    let msg = FtmpMessage {
        retransmission: false,
        source: ProcessorId(3),
        group: GroupId(7),
        seq: SeqNum(12),
        ts: Timestamp(3_456),
        ack_ts: Timestamp(3_400),
        body: FtmpBody::Regular {
            conn,
            request_num: RequestNum(9),
            giop: Bytes::from(giop.clone()),
        },
    };
    let wire = msg.encode(ByteOrder::Big);
    let giop_at = wire
        .windows(4)
        .position(|w| w == b"GIOP")
        .expect("GIOP magic present");

    println!("Fig. 2 encapsulation — IP | FTMP header | GIOP header | data\n");
    println!(
        "FTMP header: {FTMP_HEADER_LEN} B   Regular preamble (conn id, request num, len): {} B",
        giop_at - FTMP_HEADER_LEN - 4 // the octet-seq length prefix sits before GIOP
    );
    println!(
        "GIOP message: {} B (fixed header {GIOP_HEADER_LEN} B)   total FTMP datagram: {} B\n",
        giop.len(),
        wire.len()
    );
    hexdump(
        &wire,
        &[
            (0, FTMP_HEADER_LEN, "<- FTMP header"),
            (FTMP_HEADER_LEN, giop_at, "<- Regular body preamble"),
            (giop_at, giop_at + GIOP_HEADER_LEN + 16, "<- GIOP message"),
        ],
    );

    // Round-trip sanity.
    let back = FtmpMessage::decode(&wire).expect("decodes");
    match back.body {
        FtmpBody::Regular {
            giop: g,
            request_num,
            ..
        } => {
            assert_eq!(g.as_ref(), &giop[..]);
            assert_eq!(request_num, RequestNum(9));
            let parsed = GiopMessage::decode(&g).expect("GIOP decodes");
            println!(
                "\ndecoded back: {:?} request_id={:?}",
                parsed.msg_type(),
                parsed.request_id()
            );
        }
        _ => unreachable!(),
    }
}
