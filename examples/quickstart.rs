//! Quickstart: a five-member FTMP group delivering messages in one agreed
//! total order, over a lossy simulated network.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bytes::Bytes;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    RequestNum, SimProcessor,
};
use ftmp::net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet, SimTime};

fn main() {
    const N: u32 = 5;
    let group = GroupId(1);
    let addr = McastAddr(0xE000_0001);
    let conn = ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2));

    // A deterministic network with 5% packet loss.
    let sim_cfg = SimConfig::with_seed(42).loss(LossModel::Iid { p: 0.05 });
    let mut net = SimNet::new(sim_cfg);
    net.set_classifier(ftmp::core::wire::classify);

    // Five processors, all members of one processor group, with a logical
    // connection bound for application traffic.
    let members: Vec<ProcessorId> = (1..=N).map(ProcessorId).collect();
    for id in 1..=N {
        let mut engine = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(42),
            ClockMode::Lamport,
        );
        engine.create_group(SimTime::ZERO, group, addr, members.clone());
        engine.bind_connection(conn, group);
        net.add_node(id, SimProcessor::new(engine));
        net.with_node(id, |n, now, out| n.pump_at(now, out));
    }

    // Everyone multicasts concurrently; FTMP orders the lot.
    for round in 0..4u64 {
        for id in 1..=N {
            let payload = Bytes::from(format!("msg {round} from P{id}"));
            net.with_node(id, move |n, now, out| {
                n.engine_mut()
                    .multicast_request(now, conn, RequestNum(round * N as u64 + id as u64), payload)
                    .expect("connection bound");
                n.pump_at(now, out);
            });
        }
        net.run_for(SimDuration::from_millis(10));
    }
    net.run_for(SimDuration::from_millis(200));

    // Collect each member's delivery sequence.
    let mut sequences = Vec::new();
    for id in 1..=N {
        let deliveries = net.node_mut(id).unwrap().take_deliveries();
        let seq: Vec<String> = deliveries
            .iter()
            .map(|(_, d)| String::from_utf8_lossy(&d.giop).into_owned())
            .collect();
        sequences.push(seq);
    }

    println!("delivery order agreed by all {N} members:");
    for (i, line) in sequences[0].iter().enumerate() {
        println!("  {:>2}. {line}", i + 1);
    }
    let agree = sequences.windows(2).all(|w| w[0] == w[1]);
    println!();
    println!(
        "members agree on the order: {agree}   (messages: {}, network loss events: {})",
        sequences[0].len(),
        net.stats().lost
    );
    assert!(agree, "total order violated");
    assert_eq!(sequences[0].len(), 20, "every message delivered");
}
