//! Membership churn: processors join and leave a live group while traffic
//! flows; a late joiner sees only post-join traffic; a crash triggers the
//! fault path; every surviving member agrees on every membership.
//!
//! ```text
//! cargo run --example membership_churn
//! ```

use bytes::Bytes;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
    ProtocolEvent, RequestNum, SimProcessor,
};
use ftmp::net::{McastAddr, SimConfig, SimDuration, SimNet, SimTime};

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(100);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

fn send(net: &mut SimNet<SimProcessor>, id: u32, text: &str, req: u64) {
    let payload = Bytes::from(text.to_string());
    net.with_node(id, move |n, now, out| {
        let _ = n
            .engine_mut()
            .multicast_request(now, conn(), RequestNum(req), payload);
        n.pump_at(now, out);
    });
}

fn show_membership(net: &SimNet<SimProcessor>, ids: &[u32]) {
    for &id in ids {
        let m = net
            .node(id)
            .and_then(|n| n.engine().membership(GROUP))
            .map(|m| {
                m.iter()
                    .map(|p| format!("P{}", p.0))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_else(|| "-".into());
        println!("  P{id}: {{{m}}}");
    }
}

fn main() {
    let mut net = SimNet::new(SimConfig::with_seed(99));
    net.set_classifier(ftmp::core::wire::classify);

    // Founders P1, P2.
    let founders = [ProcessorId(1), ProcessorId(2)];
    for id in 1..=2u32 {
        let mut e = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(99),
            ClockMode::Lamport,
        );
        e.create_group(SimTime::ZERO, GROUP, ADDR, founders);
        e.bind_connection(conn(), GROUP);
        net.add_node(id, SimProcessor::new(e));
        net.with_node(id, |n, now, out| n.pump_at(now, out));
    }
    println!("founded group {{P1, P2}}; sending pre-join traffic …");
    send(&mut net, 1, "pre-join message", 1);
    net.run_for(SimDuration::from_millis(50));

    // P3 joins, sponsored by P1.
    let mut e = Processor::new(
        ProcessorId(3),
        ProtocolConfig::with_seed(99),
        ClockMode::Lamport,
    );
    e.expect_join(GROUP, ADDR);
    e.bind_connection(conn(), GROUP);
    net.add_node(3, SimProcessor::new(e));
    net.with_node(3, |n, now, out| n.pump_at(now, out));
    net.with_node(1, |n, now, out| {
        n.engine_mut().add_processor(now, GROUP, ProcessorId(3));
        n.pump_at(now, out);
    });
    net.run_for(SimDuration::from_millis(50));
    println!("\nP3 joined (sponsored by P1):");
    show_membership(&net, &[1, 2, 3]);

    send(&mut net, 2, "post-join message", 2);
    net.run_for(SimDuration::from_millis(50));

    // P2 leaves voluntarily.
    net.with_node(1, |n, now, out| {
        n.engine_mut().remove_processor(now, GROUP, ProcessorId(2));
        n.pump_at(now, out);
    });
    net.run_for(SimDuration::from_millis(50));
    println!("\nP2 removed voluntarily:");
    show_membership(&net, &[1, 2, 3]);

    // P4 joins, then P1 crashes: the survivors convict it.
    let mut e = Processor::new(
        ProcessorId(4),
        ProtocolConfig::with_seed(99),
        ClockMode::Lamport,
    );
    e.expect_join(GROUP, ADDR);
    e.bind_connection(conn(), GROUP);
    net.add_node(4, SimProcessor::new(e));
    net.with_node(4, |n, now, out| n.pump_at(now, out));
    net.with_node(3, |n, now, out| {
        n.engine_mut().add_processor(now, GROUP, ProcessorId(4));
        n.pump_at(now, out);
    });
    net.run_for(SimDuration::from_millis(50));
    println!("\nP4 joined (sponsored by P3):");
    show_membership(&net, &[1, 3, 4]);

    println!("\ncrashing P1 …");
    net.crash(1);
    net.run_for(SimDuration::from_millis(800));
    println!("survivors after fault detection and membership change:");
    show_membership(&net, &[3, 4]);

    // What did each processor see?
    println!("\ndelivery views:");
    for id in [2u32, 3, 4] {
        let texts: Vec<String> = net
            .node_mut(id)
            .unwrap()
            .take_deliveries()
            .iter()
            .map(|(_, d)| String::from_utf8_lossy(&d.giop).into_owned())
            .collect();
        println!("  P{id}: {texts:?}");
    }
    println!("\nprotocol events at P3:");
    for (at, e) in net.node_mut(3).unwrap().take_events() {
        match e {
            ProtocolEvent::MembershipChange { members, .. } => println!(
                "  [{at}] membership -> {:?}",
                members.iter().map(|p| p.0).collect::<Vec<_>>()
            ),
            ProtocolEvent::FaultReport { processor, .. } => {
                println!("  [{at}] FAULT REPORT for P{}", processor.0)
            }
            ProtocolEvent::JoinedGroup { .. } => println!("  [{at}] joined the group"),
            other => println!("  [{at}] {other:?}"),
        }
    }
}
