//! CORBA machinery over the replicated stack: fault-tolerant IORs,
//! LocateRequest/LocateReply, deterministic CancelRequest, and GIOP
//! fragmentation of large arguments.
//!
//! ```text
//! cargo run --example corba_features
//! ```

use ftmp::cdr::ByteOrder;
use ftmp::core::pgmp::ServerRegistration;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
};
use ftmp::giop::{FtmpProfile, IiopProfile, Ior};
use ftmp::net::{McastAddr, SimConfig, SimDuration, SimNet};
use ftmp::orb::servant::encode_i64_arg;
use ftmp::orb::{InvocationResult, OrbEndpoint, OrbNode};

const DOMAIN: McastAddr = McastAddr(500);
const GROUP: McastAddr = McastAddr(600);

fn main() {
    let og_client = ObjectGroupId::new(1, 1);
    let og_server = ObjectGroupId::new(2, 7);
    let conn = ConnectionId::new(og_client, og_server);

    // 1. The server publishes a fault-tolerant IOR: an IIOP fallback profile
    //    plus the FTMP group profile naming the fault-tolerance domain.
    let ior = Ior::fault_tolerant(
        "IDL:Demo/Counter:1.0",
        IiopProfile {
            version_major: 1,
            version_minor: 0,
            host: "replica1.example.org".into(),
            port: 2809,
            object_key: b"counter".to_vec(),
        },
        FtmpProfile {
            domain: og_server.domain.0,
            object_group: og_server.group,
            domain_mcast_addr: DOMAIN.0,
            object_key: b"counter".to_vec(),
        },
        ByteOrder::Big,
    );
    let ior_string = ior.to_ior_string(ByteOrder::Big);
    println!(
        "published IOR ({} chars):\n  {}…\n",
        ior_string.len(),
        &ior_string[..72]
    );

    // 2. A client parses the IOR and learns where to solicit the connection.
    let parsed = Ior::from_ior_string(&ior_string).expect("IOR parses");
    let profile = parsed.ftmp_profile().expect("FTMP profile present");
    println!(
        "client resolved: type {} -> domain {} object group {} via multicast {:#x}\n",
        parsed.type_id, profile.domain, profile.object_group, profile.domain_mcast_addr
    );

    // 3. Build the world: one client, two server replicas, fragmentation on.
    let mut net = SimNet::new(SimConfig::with_seed(5));
    net.set_classifier(ftmp::core::wire::classify);
    let servers = [ProcessorId(2), ProcessorId(3)];
    for id in 1..=3u32 {
        let mut proc = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(5),
            ClockMode::Lamport,
        );
        let mut orb = OrbEndpoint::new();
        orb.enable_fragmentation(512);
        if id == 1 {
            orb.register_client(conn);
        } else {
            orb.host_replica(
                og_server,
                profile.object_key.clone(),
                Box::new(ftmp::orb::Counter::default()),
            );
            proc.register_server(
                og_server,
                ServerRegistration {
                    processors: servers.to_vec(),
                    pool: vec![(GroupId(10), GROUP)],
                },
                McastAddr(profile.domain_mcast_addr),
            );
        }
        net.add_node(id, OrbNode::new(proc, orb));
        net.with_node(id, |n, now, out| n.pump(now, out));
    }
    net.with_node(1, |n, now, out| {
        n.proc_mut()
            .open_connection(now, conn, vec![ProcessorId(1)], DOMAIN);
        n.pump(now, out);
    });
    net.run_for(SimDuration::from_millis(100));

    // 4. LocateRequest: is the object served by this group?
    net.with_node(1, move |n, _, out| {
        n.orb_mut().locate(conn, b"counter");
        let now = ftmp::net::SimTime::ZERO;
        let _ = now;
        n.pump(ftmp::net::SimTime::ZERO, out);
    });
    net.with_node(1, |n, now, out| n.pump(now, out));
    net.run_for(SimDuration::from_millis(100));
    for c in net.node_mut(1).unwrap().take_completions() {
        println!("locate -> {:?}", c.result);
    }

    // 5. A fragmented invocation: 4 KiB of arguments over 512-byte
    //    datagrams (an i64 delta followed by padding the servant ignores).
    let mut big_args = encode_i64_arg(1);
    big_args.extend(vec![0u8; 4096]);
    net.with_node(1, move |n, now, out| {
        let num = n.orb_mut().invoke(conn, b"counter", "add", &big_args);
        println!("\ninvoked add() with 4 KiB of arguments as request {num:?} (fragmented)");
        n.pump(now, out);
    });
    net.run_for(SimDuration::from_millis(150));
    for c in net.node_mut(1).unwrap().take_completions() {
        match c.result {
            InvocationResult::Exception(e) => {
                println!("  completed with expected marshalling exception: {e}")
            }
            other => println!("  completed: {other:?}"),
        }
    }

    // 6. Deterministic cancellation: the CancelRequest rides the same total
    //    order as the Request. Sent by the same client *after* its own
    //    request, source order guarantees it can never overtake — so every
    //    replica executes the request, then no-ops the cancel: deterministic,
    //    never a split. (A cancel that is ordered *before* the request —
    //    e.g. from another replica — deterministically suppresses it at
    //    every server instead; the unit tests exercise that interleaving.)
    net.with_node(1, move |n, now, out| {
        let num = n
            .orb_mut()
            .invoke(conn, b"counter", "add", &encode_i64_arg(100));
        n.orb_mut().cancel(conn, num);
        println!("\ninvoked add(100) as request {num:?} and cancelled it immediately");
        n.pump(now, out);
    });
    net.run_for(SimDuration::from_millis(150));
    let snap2 = net
        .node(2)
        .unwrap()
        .orb()
        .servant(og_server)
        .unwrap()
        .snapshot();
    let snap3 = net
        .node(3)
        .unwrap()
        .orb()
        .servant(og_server)
        .unwrap()
        .snapshot();
    assert_eq!(snap2, snap3, "replicas agree");
    let value = ftmp::orb::servant::decode_i64_result(&snap2).unwrap();
    println!(
        "replica counters after the late cancel: {value} (identical on both replicas; \
         the trailing cancel could not overtake its own request)"
    );
    assert_eq!(
        value, 101,
        "request executed everywhere; cancel was deterministically late"
    );
}
