//! A live three-endpoint group over **real OS sockets**.
//!
//! Each endpoint is an [`ftmp::runtime`] node: the same sans-io FTMP
//! engine that the simulator drives, here running on its own thread
//! against wall-clock time and a real transport. The transport is UDP
//! multicast on loopback when the host allows it, with an automatic
//! fall-back to a full TCP mesh (the runtime probes before committing,
//! so this example passes in multicast-less containers too).
//!
//! The main thread publishes interleaved messages from all three
//! endpoints and then checks that every endpoint delivered the
//! identical total order.
//!
//! ```text
//! cargo run --example live_group
//! ```

use bytes::Bytes;
use ftmp::core::{ConnectionId, GroupId, ObjectGroupId, ProcessorId, RequestNum};
use ftmp::net::McastAddr;
use ftmp::runtime::{node, sys, transport};
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

const GROUP: GroupId = GroupId(1);
const GROUP_ADDR: McastAddr = McastAddr(0x4C49_5645); // "LIVE"
const UDP_PORT: u16 = 47_650;
const TCP_BASE: u16 = 47_651;

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

fn main() {
    let members: Vec<ProcessorId> = (1..=3).map(ProcessorId).collect();
    // One shared epoch so the three nodes' protocol clocks agree.
    let epoch_us = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_micros() as u64;

    let mut handles = Vec::new();
    for &id in &members {
        let (rxq, rx) = transport::rx_channel();
        // TCP fallback mesh: each node listens on its own port and dials
        // the other two. Only used if the multicast probe fails.
        let listener = sys::tcp_listener_reuse(SocketAddrV4::new(
            Ipv4Addr::LOCALHOST,
            TCP_BASE + id.0 as u16,
        ))
        .expect("bind tcp listener");
        let peers: Vec<SocketAddr> = members
            .iter()
            .filter(|&&p| p != id)
            .map(|p| SocketAddr::from((Ipv4Addr::LOCALHOST, TCP_BASE + p.0 as u16)))
            .collect();
        let selected = transport::open_transport(
            transport::TransportSpec {
                mode: transport::TransportMode::Auto,
                udp: transport::UdpConfig {
                    port: UDP_PORT,
                    ..Default::default()
                },
                tcp: Some(transport::TcpConfig {
                    listener,
                    peers,
                    reconnect: Duration::from_millis(50),
                }),
            },
            rxq,
        )
        .expect("open transport");
        if id.0 == 1 {
            println!(
                "transport: {:?}{}",
                selected.kind,
                if selected.fell_back {
                    " (multicast unavailable, fell back)"
                } else {
                    ""
                }
            );
        }
        let mut cfg = node::NodeConfig::founder(id, GROUP, GROUP_ADDR, members.clone());
        cfg.connection = Some((conn(), GROUP));
        cfg.clock = node::RuntimeClock::with_unix_epoch(epoch_us);
        handles.push(node::spawn(
            cfg,
            node::NodeParts {
                transport: selected,
                rx,
                dlog: None,
                trace: None,
            },
        ));
    }

    // Publish from all three endpoints, interleaved.
    println!("three runtime nodes over real sockets, wall-clock heartbeats\n");
    for round in 0..5u64 {
        for (i, h) in handles.iter().enumerate() {
            h.publish(
                conn(),
                RequestNum(round * 3 + i as u64 + 1),
                Bytes::from(format!("round {round} from P{}", i + 1)),
            );
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    std::thread::sleep(Duration::from_millis(400));

    let mut views = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        let mut delivered = Vec::new();
        while let Ok((_, d)) = h.deliveries.try_recv() {
            delivered.push(String::from_utf8_lossy(&d.giop).into_owned());
        }
        let report = h.stop();
        println!(
            "P{} delivered {} messages ({} datagrams in, {} out)",
            i + 1,
            delivered.len(),
            report.recv_datagrams,
            report.sent_datagrams
        );
        views.push(delivered);
    }

    let agree = views.windows(2).all(|w| w[0] == w[1]);
    println!("\nall endpoints delivered the identical order: {agree}");
    println!("first endpoint's view:");
    for (i, line) in views[0].iter().enumerate() {
        println!("  {:>2}. {line}", i + 1);
    }
    assert!(agree, "live endpoints diverged");
    assert_eq!(views[0].len(), 15, "all 15 messages delivered");
}
