//! The live transport: real threads, wall-clock heartbeats, injected loss.
//!
//! Three endpoint threads share an in-process multicast hub
//! ([`ftmp::net::live::LiveNet`]); each runs an FTMP engine against real
//! time. The hub drops 10% of remote deliveries, so the NACK machinery runs
//! for real. The main thread submits messages and prints each endpoint's
//! agreed delivery order.
//!
//! ```text
//! cargo run --example live_group
//! ```

use bytes::Bytes;
use ftmp::core::{
    Action, ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId,
    ProtocolConfig, RequestNum,
};
use ftmp::net::live::LiveNet;
use ftmp::net::{McastAddr, SimTime};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

const GROUP: GroupId = GroupId(1);
const ADDR: McastAddr = McastAddr(1);

fn conn() -> ConnectionId {
    ConnectionId::new(ObjectGroupId::new(1, 1), ObjectGroupId::new(1, 2))
}

/// Messages the main thread sends to an endpoint thread.
enum Cmd {
    Publish(String, u64),
    Stop,
}

fn main() {
    let hub = LiveNet::new();
    hub.set_loss(0.10);
    let start = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let members: Vec<ProcessorId> = (1..=3).map(ProcessorId).collect();

    let mut cmd_txs = Vec::new();
    let mut handles = Vec::new();
    let (report_tx, report_rx) = mpsc::channel::<(u32, Vec<String>)>();

    for id in 1..=3u32 {
        let (handle, rx) = hub.join(id);
        handle.subscribe(ADDR);
        let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
        cmd_txs.push(cmd_tx);
        let members = members.clone();
        let stop = Arc::clone(&stop);
        let report = report_tx.clone();
        handles.push(std::thread::spawn(move || {
            let mut engine = Processor::new(
                ProcessorId(id),
                ProtocolConfig::with_seed(7),
                ClockMode::Lamport,
            );
            let now = || SimTime(start.elapsed().as_micros() as u64);
            engine.create_group(now(), GROUP, ADDR, members);
            engine.bind_connection(conn(), GROUP);
            let mut delivered = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                // Network input, with a short timeout doubling as the tick.
                if let Ok(pkt) = rx.recv_timeout(Duration::from_micros(500)) {
                    engine.handle_packet(now(), &pkt);
                }
                engine.tick(now());
                for a in engine.drain_actions() {
                    match a {
                        Action::Send { addr, payload } => {
                            handle.send(ftmp::net::Packet::new(id, addr, payload));
                        }
                        Action::Deliver(d) => {
                            delivered.push(String::from_utf8_lossy(&d.giop).into_owned());
                        }
                        _ => {}
                    }
                }
                while let Ok(cmd) = cmd_rx.try_recv() {
                    match cmd {
                        Cmd::Publish(text, req) => {
                            let _ = engine.multicast_request(
                                now(),
                                conn(),
                                RequestNum(req),
                                Bytes::from(text),
                            );
                        }
                        Cmd::Stop => stop.store(true, Ordering::Relaxed),
                    }
                }
            }
            report.send((id, delivered)).ok();
        }));
    }
    drop(report_tx);

    // Publish from all three endpoints, interleaved.
    println!("three live endpoint threads, 10% injected loss, wall-clock heartbeats\n");
    for round in 0..5u64 {
        for (i, tx) in cmd_txs.iter().enumerate() {
            tx.send(Cmd::Publish(
                format!("round {round} from P{}", i + 1),
                round * 3 + i as u64 + 1,
            ))
            .unwrap();
        }
        std::thread::sleep(Duration::from_millis(30));
    }
    std::thread::sleep(Duration::from_millis(300));
    for tx in &cmd_txs {
        tx.send(Cmd::Stop).ok();
    }
    for h in handles {
        h.join().unwrap();
    }

    let mut views: Vec<(u32, Vec<String>)> = report_rx.iter().collect();
    views.sort_by_key(|(id, _)| *id);
    for (id, seq) in &views {
        println!("P{id} delivered {} messages", seq.len());
    }
    let agree = views.windows(2).all(|w| w[0].1 == w[1].1);
    println!("\nall endpoints delivered the identical order: {agree}");
    println!("first endpoint's view:");
    for (i, line) in views[0].1.iter().enumerate() {
        println!("  {:>2}. {line}", i + 1);
    }
    assert!(agree, "live endpoints diverged");
    assert_eq!(views[0].1.len(), 15, "all 15 messages delivered");
}
