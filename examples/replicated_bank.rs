//! A replicated bank account over the full stack: CORBA-style invocations
//! from two client replicas to three server replicas, established through
//! the ConnectRequest/Connect handshake, surviving a server crash.
//!
//! ```text
//! cargo run --example replicated_bank
//! ```

use ftmp::core::pgmp::ServerRegistration;
use ftmp::core::{
    ClockMode, ConnectionId, GroupId, ObjectGroupId, Processor, ProcessorId, ProtocolConfig,
};
use ftmp::net::{LossModel, McastAddr, SimConfig, SimDuration, SimNet};
use ftmp::orb::servant::{decode_i64_result, encode_i64_arg};
use ftmp::orb::{BankAccount, InvocationResult, OrbEndpoint, OrbNode};

const DOMAIN: McastAddr = McastAddr(500);
const GROUP: McastAddr = McastAddr(600);

fn balance_of(net: &SimNet<OrbNode>, id: u32, og: ObjectGroupId) -> i64 {
    let snap = net.node(id).unwrap().orb().servant(og).unwrap().snapshot();
    ftmp_cdr::CdrReader::new(&snap, ftmp_cdr::ByteOrder::Big)
        .read_i64()
        .unwrap()
}

fn main() {
    let og_client = ObjectGroupId::new(1, 1);
    let og_server = ObjectGroupId::new(2, 7);
    let conn = ConnectionId::new(og_client, og_server);
    let clients = [1u32, 2];
    let servers = [3u32, 4, 5];

    let mut net = SimNet::new(SimConfig::with_seed(7).loss(LossModel::Iid { p: 0.02 }));
    net.set_classifier(ftmp::core::wire::classify);
    let server_pids: Vec<ProcessorId> = servers.iter().map(|&i| ProcessorId(i)).collect();
    for id in 1..=5u32 {
        let mut proc = Processor::new(
            ProcessorId(id),
            ProtocolConfig::with_seed(7),
            ClockMode::Lamport,
        );
        let mut orb = OrbEndpoint::new();
        if clients.contains(&id) {
            orb.register_client(conn);
        } else {
            orb.host_replica(
                og_server,
                b"bank".to_vec(),
                Box::new(BankAccount::with_balance(1_000)),
            );
            proc.register_server(
                og_server,
                ServerRegistration {
                    processors: server_pids.clone(),
                    pool: vec![(GroupId(10), GROUP)],
                },
                DOMAIN,
            );
        }
        net.add_node(id, OrbNode::new(proc, orb));
        net.with_node(id, |n, now, out| n.pump(now, out));
    }
    // Clients solicit the connection; the server primary answers.
    for &id in &clients {
        net.with_node(id, move |n, now, out| {
            n.proc_mut()
                .open_connection(now, conn, vec![ProcessorId(1), ProcessorId(2)], DOMAIN);
            n.pump(now, out);
        });
    }
    net.run_for(SimDuration::from_millis(100));
    println!(
        "connection established: {}",
        net.node(1).unwrap().proc().connection_group(conn).is_some()
    );

    let invoke = |net: &mut SimNet<OrbNode>, op: &str, amount: i64| {
        for &id in &clients {
            let op = op.to_string();
            net.with_node(id, move |n, now, out| {
                n.invoke(now, conn, b"bank", &op, &encode_i64_arg(amount), out);
            });
        }
        net.run_for(SimDuration::from_millis(60));
        let done = net.node_mut(1).unwrap().take_completions();
        for c in done {
            match c.result {
                InvocationResult::Ok(bytes) => println!(
                    "  {op}({amount}) -> balance {}",
                    decode_i64_result(&bytes).unwrap()
                ),
                InvocationResult::Exception(e) => println!("  {op}({amount}) -> EXCEPTION {e}"),
                other => println!("  {op}({amount}) -> {other:?}"),
            }
        }
    };

    println!("\nnormal operation (2 client replicas, 3 server replicas):");
    invoke(&mut net, "deposit", 250);
    invoke(&mut net, "withdraw", 100);

    println!("\ncrashing server replica P5 …");
    net.crash(5);
    net.run_for(SimDuration::from_millis(800)); // detection + reconfiguration

    println!("service continues on the surviving replicas:");
    invoke(&mut net, "deposit", 50);
    invoke(&mut net, "withdraw", 1_000_000); // raises InsufficientFunds

    println!("\nfinal replica states:");
    for &id in &servers[..2] {
        println!(
            "  server P{id}: balance {}",
            balance_of(&net, id, og_server)
        );
    }
    assert_eq!(
        balance_of(&net, 3, og_server),
        balance_of(&net, 4, og_server)
    );
    let events = net.node_mut(3).unwrap().take_events();
    let fault_reported = events.iter().any(|e| {
        matches!(e, ftmp::core::ProtocolEvent::FaultReport { processor, .. } if *processor == ProcessorId(5))
    });
    println!("fault report for P5 raised: {fault_reported}");
}
